"""Tests for multi-program composition and cross-query I/O sharing."""

import numpy as np
import pytest

from repro import optimize, run_program
from repro.engine import reference_outputs
from repro.exceptions import ProgramError
from repro.ops import Pipeline
from repro.ops.compose import concat_programs


def make_query(qname, out_name, table_shape=(8, 8)):
    """One query: OUT = T T2 (a matmul consuming the shared table T)."""
    p = Pipeline(qname, params=("n",))
    t = p.input("T", blocks=("n", "n"), block_shape=table_shape)
    t2 = p.input(f"{out_name}_W", blocks=("n", "n"), block_shape=table_shape)
    out = p.matmul(t, t2, name=out_name)
    p.mark_output(out)
    return p.build()


class TestConcat:
    def test_shared_array_merged(self):
        composed = concat_programs([make_query("q1", "O1"),
                                    make_query("q2", "O2")])
        assert "T" in composed.arrays
        t_readers = {a.statement.name for a in composed.all_accesses()
                     if a.array.name == "T" and not a.is_write}
        assert len(t_readers) == 2

    def test_statement_names_prefixed_on_collision(self):
        composed = concat_programs([make_query("q1", "O1"),
                                    make_query("q2", "O2")])
        names = [s.name for s in composed.statements]
        assert names == ["q1_s1", "q2_s1"]

    def test_textual_order_preserved(self):
        composed = concat_programs([make_query("q1", "O1"),
                                    make_query("q2", "O2")])
        assert composed.statements[0].position[0] < composed.statements[1].position[0]

    def test_conflicting_geometry_rejected(self):
        q1 = make_query("q1", "O1", table_shape=(8, 8))
        q2 = make_query("q2", "O2", table_shape=(4, 4))
        with pytest.raises(ProgramError, match="conflicting geometry"):
            concat_programs([q1, q2])

    def test_empty_rejected(self):
        with pytest.raises(ProgramError):
            concat_programs([])

    def test_single_program_passthrough(self):
        q1 = make_query("q1", "O1")
        composed = concat_programs([q1])
        assert [s.name for s in composed.statements] == ["s1"]


@pytest.mark.slow
class TestCrossQuerySharing:
    """The multi-query-optimization story: the optimizer finds and realizes
    the shared scan of T across two independent queries."""

    @pytest.fixture(scope="class")
    def setup(self):
        composed = concat_programs([make_query("q1", "O1"),
                                    make_query("q2", "O2")])
        params = {"n": 3}
        result = optimize(composed, params)
        return composed, params, result

    def test_cross_query_opportunity_found(self, setup):
        composed, params, result = setup
        labels = {o.label for o in result.analysis.opportunities}
        assert "q1_s1RT->q2_s1RT" in labels

    def test_best_plan_shares_t(self, setup):
        composed, params, result = setup
        best = result.best()
        assert "q1_s1RT->q2_s1RT" in best.realized_labels
        # T's second scan is fully saved relative to running queries apart.
        solo_t_reads = 2 * 27  # each query reads T n^3 = 27 times
        from repro.optimizer import per_array_io
        stats = per_array_io(composed, params, best)
        assert stats["T"]["reads"] + stats["T"]["reads_saved"] == solo_t_reads
        assert stats["T"]["reads_saved"] >= 27

    def test_composed_execution_correct(self, setup, tmp_path):
        composed, params, result = setup
        rng = np.random.default_rng(9)
        inputs = {n: rng.standard_normal(composed.arrays[n].shape_elems(params))
                  for n in ("T", "O1_W", "O2_W")}
        report, out = run_program(composed, params, result.best(), tmp_path,
                                  inputs)
        assert np.allclose(out["O1"], inputs["T"] @ inputs["O1_W"])
        assert np.allclose(out["O2"], inputs["T"] @ inputs["O2_W"])
        assert report.io.read_bytes == result.best().cost.read_bytes

    def test_sharing_beats_back_to_back(self, setup):
        """Composed best plan does less I/O than the two queries run
        separately (each optimized on its own)."""
        composed, params, result = setup
        solo = make_query("q1", "O1")
        solo_result = optimize(solo, params)
        solo_best = solo_result.best()
        assert result.best().cost.total_bytes < 2 * solo_best.cost.total_bytes
