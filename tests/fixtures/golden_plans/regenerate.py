"""Regenerate the golden-plan regression corpus.

Each case in :data:`CASES` is optimized **exhaustively** (no pruning, no
workers) and the full result — every plan's realized labels, I/O seconds and
memory footprint, plus the best plan and the search counters — is written to
``<case>.json`` next to this script.  ``tests/optimizer/test_golden_plans.py``
replays the cases (pruned and exhaustive) and compares against these files
field-for-field, so any change to analysis, legality testing, costing or
search ordering that shifts a plan or a cost shows up as a diff here, not as
a silent behavior change.

Regenerate (only after deliberately changing optimizer behavior, and say so
in the commit message)::

    PYTHONPATH=src:. python tests/fixtures/golden_plans/regenerate.py

The diff of the JSON files is the reviewable artifact: a regeneration that
changes ``best`` or any plan cost needs a justification; one that only adds
cases should leave existing files untouched.
"""

from __future__ import annotations

import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent

# name -> (program factory, params, optimize() knobs).  Params are scaled
# down from the paper's so every case optimizes in seconds; the block-count
# geometry (what the optimizer reasons about) keeps the paper's shape.
# ``block_bytes="paper"`` resolves to the workload's paper_block_bytes.
CASES: dict[str, dict] = {
    "example1": dict(
        workload="example1",
        params={"n1": 3, "n2": 2, "n3": 1},
        knobs={},
    ),
    "add_multiply": dict(
        workload="add_multiply",
        params={"n1": 4, "n2": 3, "n3": 1},
        knobs={"block_bytes": "paper"},
    ),
    "two_matmul_A": dict(
        workload="two_matmul_A",
        params={"n1": 3, "n2": 3, "n3": 3, "n4": 3},
        knobs={"block_bytes": "paper", "max_set_size": 3},
    ),
    "two_matmul_B": dict(
        workload="two_matmul_B",
        params={"n1": 4, "n2": 2, "n3": 3, "n4": 2},
        knobs={"block_bytes": "paper", "max_set_size": 3},
    ),
    "linreg": dict(
        workload="linreg",
        params={"n": 4},
        knobs={"block_bytes": "paper", "max_set_size": 2,
               "max_candidates": 60},
    ),
}


def build_case(name: str):
    """Resolve a case to ``(program, params, knobs)`` with concrete knobs."""
    case = CASES[name]
    workload = case["workload"]
    if workload == "example1":
        from tests.fixtures import example1_program
        program = example1_program()
        block_bytes = None
    else:
        from repro.workloads import (add_multiply_config, linreg_config,
                                     two_matmul_config)
        cfg = {
            "add_multiply": lambda: add_multiply_config(),
            "two_matmul_A": lambda: two_matmul_config("A"),
            "two_matmul_B": lambda: two_matmul_config("B"),
            "linreg": lambda: linreg_config(),
        }[workload]()
        program = cfg.program
        block_bytes = cfg.paper_block_bytes
    knobs = dict(case["knobs"])
    if knobs.get("block_bytes") == "paper":
        knobs["block_bytes"] = block_bytes
    return program, dict(case["params"]), knobs


def plan_record(plan) -> dict:
    return {
        "labels": sorted(plan.realized_labels),
        "io_seconds": plan.cost.io_seconds,
        "read_bytes": plan.cost.read_bytes,
        "write_bytes": plan.cost.write_bytes,
        "memory_bytes": plan.cost.memory_bytes,
    }


def regenerate(name: str) -> dict:
    from repro import optimize

    program, params, knobs = build_case(name)
    result = optimize(program, params, **knobs)
    best = result.best()
    record = {
        "case": name,
        "workload": CASES[name]["workload"],
        "params": params,
        "knobs": {k: v for k, v in CASES[name]["knobs"].items()},
        "stats": {
            "candidates_tested": result.stats.candidates_tested,
            "feasible": result.stats.feasible,
        },
        "n_plans": len(result.plans),
        "best": plan_record(best),
        "plans": [plan_record(p) for p in result.plans],
    }
    return record


def main(argv: list[str]) -> int:
    names = argv or sorted(CASES)
    for name in names:
        record = regenerate(name)
        path = HERE / f"{name}.json"
        path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
        print(f"{name}: {record['n_plans']} plans, "
              f"best io={record['best']['io_seconds']} -> {path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
