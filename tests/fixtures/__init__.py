"""Shared program fixtures mirroring the paper's running examples.

All block shapes are scaled down ~100x per dimension relative to Tables 2-4
so tests run in milliseconds; block-count geometry matches the paper, which
is what the optimizer reasons about.
"""

from repro.ir import ProgramBuilder


def example1_program(block_rows=60, block_cols=40):
    """The paper's Example 1: C = A + B; E = C D, at block granularity.

    Statements:
      s1: C[i,k] = A[i,k] + B[i,k]
      s2: E[i,j] += C[i,k] * D[k,j]   (read of E guarded by k >= 1)
    """
    b = ProgramBuilder("example1", params=("n1", "n2", "n3"))
    a = b.array("A", dims=("n1", "n2"), block_shape=(block_rows, block_cols))
    bb = b.array("B", dims=("n1", "n2"), block_shape=(block_rows, block_cols))
    c = b.array("C", dims=("n1", "n2"), block_shape=(block_rows, block_cols),
                kind="intermediate")
    d = b.array("D", dims=("n2", "n3"), block_shape=(block_cols, 50))
    e = b.array("E", dims=("n1", "n3"), block_shape=(block_rows, 50),
                kind="output")
    with b.loop("i", 0, "n1"):
        with b.loop("k", 0, "n2"):
            b.statement("s1", kernel="add",
                        write=c["i", "k"], reads=[a["i", "k"], bb["i", "k"]])
    with b.loop("i", 0, "n1"):
        with b.loop("j", 0, "n3"):
            with b.loop("k", 0, "n2"):
                b.statement("s2", kernel="matmul_acc",
                            write=e["i", "j"],
                            reads=[c["i", "k"], d["k", "j"],
                                   e["i", "j"].when("k - 1")])
    return b.build()


def reverse_access_program():
    """Section 4.3's opposite-direction dependence example:

        for i in [0, n): A[i] = B[i]; C[i] = A[n-1-i]
    """
    b = ProgramBuilder("reverse", params=("n",))
    a = b.array("A", dims=("n",), block_shape=(10,), kind="intermediate")
    bb = b.array("B", dims=("n",), block_shape=(10,))
    c = b.array("C", dims=("n",), block_shape=(10,), kind="output")
    with b.loop("i", 0, "n"):
        b.statement("s1", kernel="copy", write=a["i"], reads=[bb["i"]])
        b.statement("s2", kernel="copy", write=c["i"], reads=[a["n - 1 - i"]])
    return b.build()


def two_matmul_program(blk=60):
    """Section 6.2: C = A B; E = A D."""
    b = ProgramBuilder("two_matmul", params=("n1", "n2", "n3", "n4"))
    a = b.array("A", dims=("n1", "n3"), block_shape=(blk, blk))
    bm = b.array("B", dims=("n3", "n2"), block_shape=(blk, blk))
    c = b.array("C", dims=("n1", "n2"), block_shape=(blk, blk), kind="output")
    d = b.array("D", dims=("n3", "n4"), block_shape=(blk, blk))
    e = b.array("E", dims=("n1", "n4"), block_shape=(blk, blk), kind="output")
    with b.loop("i", 0, "n1"):
        with b.loop("j", 0, "n2"):
            with b.loop("k", 0, "n3"):
                b.statement("s1", kernel="matmul_acc",
                            write=c["i", "j"],
                            reads=[a["i", "k"], bm["k", "j"],
                                   c["i", "j"].when("k - 1")])
    with b.loop("i", 0, "n1"):
        with b.loop("j", 0, "n4"):
            with b.loop("k", 0, "n3"):
                b.statement("s2", kernel="matmul_acc",
                            write=e["i", "j"],
                            reads=[a["i", "k"], d["k", "j"],
                                   e["i", "j"].when("k - 1")])
    return b.build()
