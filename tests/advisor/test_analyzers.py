"""Analyzer battery: costed recommendations from config (and profile)."""

import pytest

from repro.advisor import (AdvisorConfig, AdvisorContext,
                           BlockGeometryAnalyzer, JobSpec, LayoutAnalyzer,
                           MaterializationAnalyzer, MemoryBudgetAnalyzer,
                           PrefetchAnalyzer, Recommendation, WorkloadSpec,
                           rank, run_analyzers)
from repro.advisor.workload import WorkloadProfile

CAP = 8 << 20


def shared_workload(n_jobs=4, n1=4, n2=4):
    """Jobs sharing A and B (seed 0) with per-job D — the shape where both
    geometry rescaling and materializing C pay off."""
    return WorkloadSpec([
        JobSpec("add_multiply", {"n1": n1, "n2": n2, "n3": 1}, seed=0,
                seeds={"D": 100 + i}, plan_exact=True, name=f"t{i}")
        for i in range(n_jobs)])


@pytest.fixture(scope="module")
def ctx():
    cfg = AdvisorConfig.from_spec(shared_workload(), CAP)
    return AdvisorContext(cfg)


class TestContext:
    def test_groups_by_template(self, ctx):
        groups = ctx.groups()
        assert len(groups) == 1
        assert len(groups[0]) == 4

    def test_best_plan_is_memoized(self, ctx):
        job = ctx.config.jobs[0]
        p1 = ctx.best_plan(job)
        p2 = ctx.best_plan(job)
        assert p1 is p2

    def test_baseline_covers_all_jobs(self, ctx):
        bytes_, seconds = ctx.baseline()
        job = ctx.config.jobs[0]
        plan = ctx.best_plan(job)
        assert bytes_ == 4 * (plan.cost.read_bytes + plan.cost.write_bytes)
        assert seconds == pytest.approx(4 * plan.cost.io_seconds)

    def test_confidence_reflects_plan_exactness(self, ctx):
        assert ctx.confidence_for(ctx.config.jobs) == 0.9
        loose = [j.replace(plan_exact=False) for j in ctx.config.jobs]
        assert ctx.confidence_for(loose) == 0.6


class TestBlockGeometry:
    def test_recommends_coarsening_and_predicts_savings(self, ctx):
        recs = BlockGeometryAnalyzer().analyze(ctx)
        assert len(recs) == 1
        rec = recs[0]
        assert rec.kind == "block_geometry"
        assert not rec.advisory
        assert rec.predicted_saved_bytes > 0
        (act,) = rec.actions
        assert act["type"] == "rescale"
        assert sorted(act["jobs"]) == ["t0", "t1", "t2", "t3"]
        assert act["axis"] in {"n1", "n2", "n3"}
        assert act["factor"] >= 2


class TestMaterialization:
    def test_shared_prefix_recommended_once(self, ctx):
        recs = MaterializationAnalyzer().analyze(ctx)
        assert len(recs) == 1
        rec = recs[0]
        assert rec.kind == "materialize"
        assert rec.predicted_saved_bytes > 0
        (act,) = rec.actions
        assert act == {"type": "materialize", "array": "C",
                       "jobs": ["t0", "t1", "t2", "t3"]}
        # 1 producer group feeds 4 jobs (A and B seeds all agree).
        assert "1 producer(s) feed 4 jobs" in rec.title

    def test_no_sharing_no_recommendation(self):
        # Distinct base seeds: every job would need its own producer.
        spec = WorkloadSpec([
            JobSpec("add_multiply", {"n1": 4, "n2": 4, "n3": 1}, seed=i,
                    plan_exact=True, name=f"t{i}") for i in range(3)])
        ctx = AdvisorContext(AdvisorConfig.from_spec(spec, CAP))
        assert MaterializationAnalyzer().analyze(ctx) == []

    def test_single_job_group_skipped(self):
        spec = WorkloadSpec([JobSpec("add_multiply",
                                     {"n1": 4, "n2": 4, "n3": 1}, name="t")])
        ctx = AdvisorContext(AdvisorConfig.from_spec(spec, CAP))
        assert MaterializationAnalyzer().analyze(ctx) == []


class TestMemoryBudget:
    def test_tight_cap_yields_concrete_raise(self):
        # A cap that admits some plan but prices out the cheapest ones.
        spec = shared_workload(n_jobs=2)
        ctx = AdvisorContext(AdvisorConfig.from_spec(spec, 120_000))
        recs = MemoryBudgetAnalyzer().analyze(ctx)
        if recs:  # concrete only when the uncapped plan is strictly cheaper
            rec = recs[0]
            assert rec.actions[0]["type"] == "memory_cap"
            assert rec.actions[0]["bytes"] > 120_000
            assert not rec.advisory
            assert rec.predicted_saved_bytes > 0

    def test_oversized_cap_advisory_from_profile(self):
        prof = WorkloadProfile()
        prof.admission = {"peak_admitted_bytes": CAP * 0.25,
                          "wait_seconds": 0.0}
        ctx = AdvisorContext(AdvisorConfig.from_spec(shared_workload(2), CAP),
                             profile=prof)
        recs = MemoryBudgetAnalyzer().analyze(ctx)
        assert len(recs) == 1
        assert recs[0].advisory
        assert recs[0].actions[0]["bytes"] < CAP
        assert recs[0].predicted_saved_bytes == 0


class TestPrefetch:
    def test_depth_zero_with_reads_suggests_enabling(self):
        prof = WorkloadProfile()
        prof.totals = {"read_bytes": 1 << 20}
        ctx = AdvisorContext(AdvisorConfig.from_spec(shared_workload(2), CAP),
                             profile=prof)
        recs = PrefetchAnalyzer().analyze(ctx)
        assert len(recs) == 1
        assert recs[0].advisory
        assert recs[0].actions[0] == {"type": "prefetch_depth", "depth": 2}

    def test_wait_bound_stager_deepens(self):
        prof = WorkloadProfile()
        prof.prefetch = {"stages": 10, "wait_ratio": 0.8}
        cfg = AdvisorConfig.from_spec(shared_workload(2), CAP,
                                      prefetch_depth=2)
        recs = PrefetchAnalyzer().analyze(AdvisorContext(cfg, profile=prof))
        assert len(recs) == 1
        assert recs[0].actions[0]["depth"] == 4

    def test_no_profile_no_advice(self):
        ctx = AdvisorContext(AdvisorConfig.from_spec(shared_workload(2), CAP))
        assert PrefetchAnalyzer().analyze(ctx) == []


class TestLayout:
    def test_write_elided_intermediate_goes_labtree(self):
        spec = shared_workload(2)
        cfg = AdvisorConfig.from_spec(spec, CAP)
        prof = WorkloadProfile()
        for j in cfg.jobs:
            from repro.advisor.workload import JobProfile
            jp = JobProfile(j.name)
            jp.per_array = {"C": {"read_bytes": 0, "write_bytes": 0}}
            prof.jobs[j.name] = jp
        recs = LayoutAnalyzer().analyze(AdvisorContext(cfg, profile=prof))
        assert len(recs) == 1
        assert recs[0].actions[0] == {"type": "store_format", "array": "C",
                                      "format": "labtree"}

    def test_already_labtree_not_renominated(self):
        spec = shared_workload(2)
        cfg = AdvisorConfig.from_spec(spec, CAP,
                                      store_format={"default": "daf",
                                                    "C": "labtree"})
        prof = WorkloadProfile()
        for j in cfg.jobs:
            from repro.advisor.workload import JobProfile
            prof.jobs[j.name] = JobProfile(j.name)
        recs = LayoutAnalyzer().analyze(AdvisorContext(cfg, profile=prof))
        assert recs == []


class TestRanking:
    def test_rank_prefers_savings_then_concreteness(self):
        def rec(kind, saved, advisory=False, conf=0.5):
            return Recommendation(
                kind=kind, title=kind, detail="", actions=[],
                advisory=advisory, confidence=conf,
                predicted_before_bytes=100, predicted_after_bytes=100 - saved,
                predicted_before_seconds=1.0,
                predicted_after_seconds=1.0 - saved / 100)
        big = rec("a", 50)
        small = rec("b", 10)
        advisory = rec("c", 0, advisory=True)
        concrete_zero = rec("d", 0)
        order = rank([advisory, small, concrete_zero, big])
        assert order[0] is big
        assert order[1] is small
        assert order.index(concrete_zero) < order.index(advisory)

    def test_run_analyzers_counts_metrics(self, ctx):
        from repro.obs import metrics as obs_metrics
        reg = obs_metrics.MetricsRegistry()
        with obs_metrics.use(reg):
            recs = run_analyzers(ctx)
        assert recs  # geometry + materialization at least
        snap = reg.snapshot()
        total = sum(v for k, v in snap.items()
                    if k.startswith("repro_advisor_recommendations"))
        assert total == len(recs)
