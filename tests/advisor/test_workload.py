"""Workload ingestion: specs, geometry rewrites, splits, profile round-trip."""

import json

import numpy as np
import pytest

from repro.advisor import (JobSpec, WorkloadProfile, WorkloadSpec,
                           generate_input, geometry_candidates, load_trace,
                           materialization_split, rescale_geometry)
from repro.advisor.apply import AdvisorConfig, run_workload
from repro.advisor.workload import load_metrics
from repro.exceptions import AdvisorError
from repro.ops import add_multiply_program


class TestJobSpec:
    def test_args_are_canonicalized_to_builder_defaults(self):
        j = JobSpec("add_multiply", {"n1": 2, "n2": 2, "n3": 1})
        assert j.args == {"block_rows": 60, "block_cols": 40, "d_cols": 50}

    def test_unknown_builder_rejected(self):
        with pytest.raises(AdvisorError):
            JobSpec("nope", {"n": 1})

    def test_seed_for_falls_back_to_base_seed(self):
        j = JobSpec("add_multiply", {"n1": 2, "n2": 2, "n3": 1},
                    seed=3, seeds={"D": 9})
        assert j.seed_for("D") == 9
        assert j.seed_for("A") == 3

    def test_template_key_groups_equal_bindings(self):
        a = JobSpec("add_multiply", {"n1": 2, "n2": 2, "n3": 1}, seeds={"D": 1})
        b = JobSpec("add_multiply", {"n1": 2, "n2": 2, "n3": 1}, seeds={"D": 2})
        c = JobSpec("add_multiply", {"n1": 4, "n2": 2, "n3": 1})
        assert a.template_key() == b.template_key()
        assert a.template_key() != c.template_key()

    def test_template_key_distinguishes_derived_programs(self):
        j = JobSpec("add_multiply", {"n1": 2, "n2": 2, "n3": 1})
        prefix, residual = materialization_split(j.build_program(), "C")
        jp = j.replace(program_obj=prefix, args={})
        jr = j.replace(program_obj=residual, args={})
        assert jp.template_key() != jr.template_key()
        assert jp.template_key() != j.template_key()

    def test_program_obj_jobs_refuse_serialization(self):
        j = JobSpec("add_multiply", {"n1": 2, "n2": 2, "n3": 1})
        prefix, _ = materialization_split(j.build_program(), "C")
        with pytest.raises(AdvisorError):
            j.replace(program_obj=prefix, args={}).to_dict()


class TestWorkloadSpec:
    def test_jsonl_round_trip(self, tmp_path):
        spec = WorkloadSpec([
            JobSpec("add_multiply", {"n1": 2, "n2": 2, "n3": 1},
                    seeds={"D": 7}, plan_exact=True, name="t1"),
            JobSpec("linreg", {"n": 2}, count=3),
        ])
        p = tmp_path / "w.jsonl"
        spec.to_jsonl(p)
        back = WorkloadSpec.from_jsonl(p)
        assert [j.to_dict() for j in back.jobs] == \
            [j.to_dict() for j in spec.jobs]

    def test_from_jsonl_skips_comments_and_blanks(self, tmp_path):
        p = tmp_path / "w.jsonl"
        p.write_text('# header\n\n{"program": "linreg", "params": {"n": 2}}\n')
        assert len(WorkloadSpec.from_jsonl(p)) == 1

    def test_from_jsonl_reports_line_numbers(self, tmp_path):
        p = tmp_path / "w.jsonl"
        p.write_text('{"program": "linreg"}\n')
        with pytest.raises(AdvisorError, match="w.jsonl:1"):
            WorkloadSpec.from_jsonl(p)

    def test_expansion_unrolls_count_and_names_jobs(self):
        spec = WorkloadSpec([
            JobSpec("linreg", {"n": 2}, count=2, name="rep"),
            JobSpec("linreg", {"n": 2}),
        ])
        names = [j.name for j in spec.expanded()]
        assert names == ["rep_r1", "rep_r2", "w2"]
        assert all(j.count == 1 for j in spec.expanded())

    def test_expansion_rejects_duplicate_names(self):
        spec = WorkloadSpec([JobSpec("linreg", {"n": 2}, name="x"),
                             JobSpec("linreg", {"n": 2}, name="x")])
        with pytest.raises(AdvisorError, match="duplicate"):
            spec.expanded()


class TestGeometry:
    def test_rescale_halves_param_and_doubles_blocks(self):
        j = JobSpec("add_multiply", {"n1": 4, "n2": 4, "n3": 1})
        r = rescale_geometry(j, "n1", 2)
        assert r.params == {"n1": 2, "n2": 4, "n3": 1}
        assert r.args["block_rows"] == 120
        assert r.args["block_cols"] == 40  # untied axis untouched
        # Logical array sizes are preserved.
        a0 = j.build_program().arrays["A"]
        a1 = r.build_program().arrays["A"]
        assert a0.shape_elems(j.params) == a1.shape_elems(r.params)

    def test_rescale_refuses_indivisible_factor(self):
        j = JobSpec("add_multiply", {"n1": 4, "n2": 4, "n3": 1})
        assert rescale_geometry(j, "n1", 3) is None

    def test_candidates_are_labelled_and_divisor_compatible(self):
        j = JobSpec("add_multiply", {"n1": 4, "n2": 4, "n3": 1})
        labels = [label for label, _ in geometry_candidates(j)]
        assert "n1/2" in labels and "n1/4" in labels
        assert all("/3" not in lab for lab in labels)

    def test_two_matmul_rescale_keeps_shared_axis_consistent(self):
        j = JobSpec("two_matmul", {"n1": 2, "n2": 2, "n3": 2, "n4": 2},
                    args={"a_shape": [60, 40], "b_shape": [40, 50],
                          "d_shape": [40, 30]})
        r = rescale_geometry(j, "n3", 2)
        assert r.params["n3"] == 1
        # All three block dims tied to n3 scale together.
        assert r.args["a_shape"] == (60, 80)
        assert r.args["b_shape"] == (80, 50)
        assert r.args["d_shape"] == (80, 30)
        r.build_program().validate()


class TestMaterializationSplit:
    def test_split_rekinds_target_and_partitions_statements(self):
        prog = add_multiply_program()
        prefix, residual = materialization_split(prog, "C")
        assert prefix.arrays["C"].kind.value == "output"
        assert residual.arrays["C"].kind.value == "input"
        assert len(prefix.statements) + len(residual.statements) == \
            len(prog.statements)
        prefix.validate()
        residual.validate()

    def test_split_refuses_outputs_and_inputs(self):
        prog = add_multiply_program()
        assert materialization_split(prog, "E") is None
        assert materialization_split(prog, "A") is None


class TestGenerateInput:
    def test_deterministic_and_keyed_by_name(self):
        prog = add_multiply_program()
        params = {"n1": 2, "n2": 2, "n3": 1}
        a1 = generate_input(prog.arrays["A"], params, 0, "A")
        a2 = generate_input(prog.arrays["A"], params, 0, "A")
        b = generate_input(prog.arrays["B"], params, 0, "B")
        assert np.array_equal(a1, a2)
        assert not np.array_equal(a1, b)  # same seed, different array
        assert a1.shape == prog.arrays["A"].shape_elems(params)


class TestTraceReaders:
    def test_load_trace_refuses_newer_schema(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text(json.dumps({"v": 99, "name": "x", "ph": "i"}) + "\n")
        with pytest.raises(AdvisorError, match="schema"):
            load_trace(p)

    def test_load_trace_accepts_legacy_unversioned_lines(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text(json.dumps({"name": "x", "cat": "c", "ph": "i",
                                 "ts": 0.0, "tid": 1, "depth": 0}) + "\n")
        assert len(load_trace(p)) == 1

    def test_load_metrics_refuses_newer_snapshot(self, tmp_path):
        p = tmp_path / "m.json"
        p.write_text(json.dumps({"v": 99, "kind": "repro.metrics.snapshot",
                                 "series": {}}))
        with pytest.raises(AdvisorError):
            load_metrics(p)


class TestProfileRoundTrip:
    def test_live_profile_equals_offline_profile(self, tmp_path):
        """Satellite (c): ``from_run`` and ``from_files`` agree field by
        field on the same run."""
        spec = WorkloadSpec([
            JobSpec("add_multiply", {"n1": 2, "n2": 2, "n3": 1}, seed=0,
                    seeds={"D": 1}, plan_exact=True, name="j1"),
            JobSpec("add_multiply", {"n1": 2, "n2": 2, "n3": 1}, seed=0,
                    seeds={"D": 2}, plan_exact=True, name="j2"),
        ])
        cfg = AdvisorConfig.from_spec(spec, memory_cap_bytes=8 << 20,
                                      workers=2)
        trace_p = tmp_path / "trace.jsonl"
        metrics_p = tmp_path / "metrics.json"
        live = run_workload(cfg, tmp_path / "run", trace_path=trace_p,
                            metrics_path=metrics_p)
        offline = WorkloadProfile.from_files(trace_p, metrics_p)
        for field in WorkloadProfile.FIELDS:
            assert getattr(live, field) == getattr(offline, field), field
        assert live == offline
        assert set(live.jobs) == {"j1", "j2"}
        assert live.totals["read_bytes"] > 0
