"""Apply + verify: config rewriting, workload execution, the closed loop."""

import pytest

from repro.advisor import (AdvisorConfig, AdvisorContext, JobSpec,
                           Recommendation, WorkloadSpec,
                           apply_recommendations, measured_io_bytes,
                           run_analyzers, run_workload,
                           validate_recommendations)
from repro.exceptions import AdvisorError

CAP = 8 << 20


def shared_spec(n_jobs=4):
    return WorkloadSpec([
        JobSpec("add_multiply", {"n1": 4, "n2": 4, "n3": 1}, seed=0,
                seeds={"D": 100 + i}, plan_exact=True, name=f"t{i}")
        for i in range(n_jobs)])


def rec(actions, kind="block_geometry", advisory=False):
    return Recommendation(kind=kind, title="t", detail="", actions=actions,
                          advisory=advisory, predicted_before_bytes=100,
                          predicted_after_bytes=90,
                          predicted_before_seconds=1.0,
                          predicted_after_seconds=0.9)


class TestApply:
    def test_apply_is_pure(self):
        cfg = AdvisorConfig.from_spec(shared_spec(2), CAP)
        out = apply_recommendations(
            cfg, [rec([{"type": "memory_cap", "bytes": 123}],
                      kind="memory_budget")])
        assert out.memory_cap_bytes == 123
        assert cfg.memory_cap_bytes == CAP
        assert out is not cfg

    def test_rescale_rewrites_named_jobs(self):
        cfg = AdvisorConfig.from_spec(shared_spec(2), CAP)
        out = apply_recommendations(
            cfg, [rec([{"type": "rescale", "jobs": ["t0", "t1"],
                        "axis": "n1", "factor": 2}])])
        assert all(j.params["n1"] == 2 for j in out.jobs)
        assert all(j.args["block_rows"] == 120 for j in out.jobs)

    def test_rescale_unknown_job_raises(self):
        cfg = AdvisorConfig.from_spec(shared_spec(2), CAP)
        with pytest.raises(AdvisorError, match="unknown job"):
            apply_recommendations(
                cfg, [rec([{"type": "rescale", "jobs": ["nope"],
                            "axis": "n1", "factor": 2}])])

    def test_rescale_inapplicable_factor_raises(self):
        cfg = AdvisorConfig.from_spec(shared_spec(1), CAP)
        with pytest.raises(AdvisorError, match="not.*applicable"):
            apply_recommendations(
                cfg, [rec([{"type": "rescale", "jobs": ["t0"],
                            "axis": "n1", "factor": 3}])])

    def test_materialize_adds_shared_producer(self):
        cfg = AdvisorConfig.from_spec(shared_spec(3), CAP)
        out = apply_recommendations(
            cfg, [rec([{"type": "materialize", "array": "C",
                        "jobs": ["t0", "t1", "t2"]}], kind="materialize")])
        producers = [j for j in out.jobs if j.program_obj is not None
                     and not j.inputs_from]
        consumers = [j for j in out.jobs if j.inputs_from]
        assert len(producers) == 1  # A, B seeds agree across all three
        assert producers[0].name == "mat_C_1"
        assert len(consumers) == 3
        for j in consumers:
            assert j.inputs_from == {"C": "mat_C_1"}
            assert j.program_obj.arrays["C"].kind.value == "input"

    def test_materialize_splits_by_prefix_seed_groups(self):
        spec = WorkloadSpec(
            [JobSpec("add_multiply", {"n1": 4, "n2": 4, "n3": 1},
                     seed=s, plan_exact=True, name=f"t{i}")
             for i, s in enumerate([0, 0, 7])])
        cfg = AdvisorConfig.from_spec(spec, CAP)
        out = apply_recommendations(
            cfg, [rec([{"type": "materialize", "array": "C",
                        "jobs": ["t0", "t1", "t2"]}], kind="materialize")])
        producers = sorted(j.name for j in out.jobs
                           if j.program_obj is not None and not j.inputs_from)
        assert producers == ["mat_C_1", "mat_C_2"]

    def test_geometry_composes_with_materialization(self):
        cfg = AdvisorConfig.from_spec(shared_spec(2), CAP)
        out = apply_recommendations(cfg, [
            rec([{"type": "rescale", "jobs": ["t0", "t1"],
                  "axis": "n1", "factor": 2}]),
            rec([{"type": "materialize", "array": "C",
                  "jobs": ["t0", "t1"]}], kind="materialize"),
        ])
        # The split happened on the rescaled program.
        producer = next(j for j in out.jobs if j.program_obj is not None
                        and not j.inputs_from)
        assert producer.params["n1"] == 2
        assert producer.program_obj.arrays["A"].block_shape[0] == 120

    def test_service_knob_actions(self):
        cfg = AdvisorConfig.from_spec(shared_spec(1), CAP)
        out = apply_recommendations(cfg, [
            rec([{"type": "store_format", "array": "C",
                  "format": "labtree"}], kind="layout", advisory=True),
            rec([{"type": "prefetch_depth", "depth": 2}], kind="prefetch",
                advisory=True),
        ])
        assert out.store_format["C"] == "labtree"
        assert out.prefetch_depth == 2


class TestRunWorkload:
    def test_run_produces_attributed_profile(self, tmp_path):
        cfg = AdvisorConfig.from_spec(shared_spec(2), CAP)
        profile = run_workload(cfg, tmp_path)
        assert set(profile.jobs) == {"t0", "t1"}
        assert measured_io_bytes(profile) > 0
        assert all(jp.read_bytes > 0 for jp in profile.jobs.values())

    def test_materialized_run_matches_reference(self, tmp_path):
        """Producer outputs feed consumers; results must equal the
        unsplit run's outputs (correctness of the rewiring)."""
        import numpy as np

        from repro.advisor import generate_input
        from repro.engine import reference_outputs

        cfg = AdvisorConfig.from_spec(shared_spec(2), CAP)
        applied = apply_recommendations(
            cfg, [rec([{"type": "materialize", "array": "C",
                        "jobs": ["t0", "t1"]}], kind="materialize")])
        run_workload(applied, tmp_path / "mat")
        # Reference: the original (unsplit) program on the same inputs.
        job = cfg.jobs[0]
        prog = job.build_program()
        inputs = {n: generate_input(a, job.params, job.seed_for(n), n)
                  for n, a in prog.arrays.items() if a.kind.value == "input"}
        ref = reference_outputs(prog, job.params, inputs)
        # Re-run the applied pipeline in-process to grab outputs.
        from repro.advisor.apply import _submit
        from repro.service import ArrayService
        with ArrayService(tmp_path / "svc", memory_cap_bytes=CAP,
                          workers=1) as svc:
            producer = next(j for j in applied.jobs
                            if j.program_obj is not None)
            consumer = next(j for j in applied.jobs if j.inputs_from)
            produced = {producer.name: _submit(svc, producer, {})
                        .result().outputs}
            out = _submit(svc, consumer, produced).result().outputs
        np.testing.assert_allclose(out["E"], ref["E"], rtol=1e-10)


class TestValidate:
    def test_closed_loop_validates_and_reduces(self, tmp_path):
        cfg = AdvisorConfig.from_spec(shared_spec(4), CAP)
        recs = run_analyzers(AdvisorContext(cfg))
        concrete = [r for r in recs if not r.advisory]
        assert concrete, "expected geometry and/or materialization recs"
        summary = validate_recommendations(cfg, concrete, tmp_path)
        assert summary["baseline_bytes"] > 0
        for r in concrete:
            assert r.validated
            assert not r.mispredicted, \
                (r.title, r.validation_error)
        # The applied set must actually shrink measured I/O (the
        # acceptance lever; the CI job requires >= 15% on the fixture).
        assert summary["reduction"] is not None
        assert summary["reduction"] > 0.15

    def test_misprediction_is_flagged_not_hidden(self, tmp_path):
        cfg = AdvisorConfig.from_spec(shared_spec(2), CAP)
        bogus = Recommendation(
            kind="memory_budget", title="bogus", detail="",
            actions=[{"type": "memory_cap", "bytes": CAP}],
            predicted_before_bytes=10 ** 9,
            predicted_after_bytes=0,  # claims to save a GB; saves nothing
            predicted_before_seconds=1.0, predicted_after_seconds=0.0)
        summary = validate_recommendations(cfg, [bogus], tmp_path)
        assert bogus.validated
        assert bogus.mispredicted
        assert summary["recommendations"][0]["mispredicted"]
