"""Metrics registry: instruments, adoption, exposition, snapshot/diff."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)


@pytest.fixture(autouse=True)
def no_ambient_registry():
    metrics.uninstall()
    yield
    metrics.uninstall()


class TestInstruments:
    def test_counter(self):
        c = Counter("repro_x", {"disk": "d1"})
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert c.series() == [("repro_x", {"disk": "d1"}, 42)]

    def test_gauge_set_and_dec(self):
        g = Gauge("repro_g")
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8

    def test_histogram_cumulative_buckets(self):
        h = Histogram("repro_h", buckets=(10, 100))
        for v in (5, 5, 50, 500):
            h.observe(v)
        series = {f"{n}{metrics._render_labels(l)}": v
                  for n, l, v in h.series()}
        assert series['repro_h_bucket{le="10"}'] == 2
        assert series['repro_h_bucket{le="100"}'] == 3   # cumulative
        assert series['repro_h_bucket{le="+Inf"}'] == 4
        assert series["repro_h_sum"] == 560
        assert series["repro_h_count"] == 4


class TestRegistry:
    def test_get_or_create_identity(self):
        r = MetricsRegistry()
        a = r.counter("repro_reads", disk="d1")
        b = r.counter("repro_reads", disk="d1")
        assert a is b

    def test_labels_distinguish_series(self):
        r = MetricsRegistry()
        a = r.counter("repro_reads", disk="d1")
        b = r.counter("repro_reads", disk="d2")
        assert a is not b
        a.inc(5)
        assert b.value == 0

    def test_register_adopts_external_instrument(self):
        r = MetricsRegistry()
        c = Counter("repro_io_read_bytes")
        r.register(c)
        c.inc(100)
        assert r.snapshot()["repro_io_read_bytes"] == 100

    def test_rebind_moves_series_without_duplicate(self):
        # The thin-view pattern: a stat holder self-binds with a seq label,
        # then gets rebound with a better one.  The stale key must vanish.
        r = MetricsRegistry()
        c = Counter("repro_apriori_feasible", {"search": "search1"})
        r.register(c)
        c.labels = {"program": "two_matmul"}
        r.register(c)
        snap = r.snapshot()
        assert 'repro_apriori_feasible{program="two_matmul"}' in snap
        assert 'repro_apriori_feasible{search="search1"}' not in snap
        assert len(snap) == 1

    def test_seq_labels_are_unique(self):
        r = MetricsRegistry()
        assert r.seq("pool") == "pool1"
        assert r.seq("pool") == "pool2"
        assert r.seq("disk") == "disk1"

    def test_expose_text_format(self):
        r = MetricsRegistry()
        r.counter("repro_reads", disk="d1").inc(3)
        r.gauge("repro_used").set(2.0)
        text = r.expose_text()
        assert "# TYPE repro_reads counter" in text
        assert 'repro_reads{disk="d1"} 3' in text
        assert "# TYPE repro_used gauge" in text
        assert "repro_used 2\n" in text         # integral floats int-ified
        assert text.endswith("\n")

    def test_snapshot_diff(self):
        r = MetricsRegistry()
        c = r.counter("repro_reads")
        g = r.gauge("repro_used")
        c.inc(10)
        before = r.snapshot()
        c.inc(5)
        delta = r.diff(before)
        assert delta == {"repro_reads": 5}       # zero-delta gauge omitted
        assert g.value == 0


class TestGlobalInstall:
    def test_install_and_use_scoping(self):
        assert metrics.CURRENT is None
        r = metrics.install()
        assert metrics.CURRENT is r
        other = MetricsRegistry()
        with metrics.use(other):
            assert metrics.CURRENT is other
        assert metrics.CURRENT is r
        metrics.uninstall()
        assert metrics.CURRENT is None


class TestThinViews:
    """The engine's stat classes read/write the same instrument objects."""

    def test_iostats_fields_are_instrument_views(self):
        from repro.storage.disk import IOStats
        stats = IOStats()
        stats.read_bytes += 4096
        stats.read_ops += 1
        assert stats.read_bytes == 4096
        r = MetricsRegistry()
        stats.bind(r, disk="d1")
        stats.write_bytes += 100
        snap = r.snapshot()
        assert snap['repro_io_read_bytes{disk="d1"}'] == 4096
        assert snap['repro_io_write_bytes{disk="d1"}'] == 100

    def test_iostats_reset_zeroes_series(self):
        from repro.storage.disk import IOStats
        stats = IOStats()
        stats.read_bytes += 10
        stats.reset()
        assert stats.read_bytes == 0

    def test_pool_stats_registered_when_installed(self):
        from repro.storage.buffer import BufferPool
        r = metrics.install()
        pool = BufferPool(cap_bytes=1 << 20)
        pool.hits += 2
        assert r.snapshot()['repro_pool_hits{pool="pool1"}'] == 2


class TestQuantiles:
    """Histogram quantile extraction (p50/p90/p99 for SLO reporting)."""

    def _loaded(self):
        h = Histogram("repro_lat", buckets=(1, 2, 4, 8))
        for v in [0.5] * 50 + [1.5] * 30 + [3.0] * 15 + [6.0] * 4 + [20.0]:
            h.observe(v)
        return h

    def test_quantile_interpolates_within_bucket(self):
        h = self._loaded()
        assert 0 < h.quantile(0.5) <= 1          # rank 50 in (0, 1]
        assert 1 < h.quantile(0.9) <= 4
        assert 4 < h.quantile(0.99) <= 8

    def test_inf_bucket_clamps_to_largest_finite_bound(self):
        h = self._loaded()
        assert h.quantile(1.0) == 8

    def test_empty_histogram_returns_none(self):
        assert Histogram("repro_e").quantile(0.5) is None

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            self._loaded().quantile(1.5)

    def test_quantiles_dict_keys(self):
        q = self._loaded().quantiles()
        assert set(q) == {"p50", "p90", "p99"}

    def test_registry_quantiles_skip_empty_histograms(self):
        r = MetricsRegistry()
        r.histogram("repro_empty")
        full = r.histogram("repro_full", buckets=(1, 10))
        full.observe(0.5)
        q = r.quantiles()
        assert "repro_full" in q and "repro_empty" not in q

    def test_snapshot_doc_carries_quantiles_member(self):
        r = MetricsRegistry()
        h = r.histogram("repro_lat", buckets=(1, 10), op="x")
        h.observe(0.5)
        doc = r.snapshot_doc()
        assert doc["v"] == metrics.SCHEMA_VERSION
        assert 'repro_lat{op="x"}' in doc["quantiles"]


class TestMergeAndPickle:
    """The scale-out primitive: worker snapshots fold into parent totals."""

    def _worker_registry(self, w: int) -> MetricsRegistry:
        r = MetricsRegistry()
        r.counter("repro_jobs", worker=str(w % 2)).inc(3)
        r.gauge("repro_depth").set(1)
        h = r.histogram("repro_lat", buckets=(1, 2, 4, 8))
        for v in (0.5, 1.5, 6.0):
            h.observe(v)
        return r

    def test_eight_worker_snapshots_merge_to_exact_totals(self):
        import pickle
        parent = MetricsRegistry()
        for w in range(8):
            # Round-trip through pickle first: exactly what the process
            # backend ships home.
            parent.merge(pickle.loads(pickle.dumps(
                self._worker_registry(w))))
        snap = parent.snapshot()
        assert snap['repro_jobs{worker="0"}'] == 12
        assert snap['repro_jobs{worker="1"}'] == 12
        assert snap["repro_depth"] == 8
        assert snap["repro_lat_count"] == 24
        assert snap["repro_lat_sum"] == 8 * 8.0
        assert snap['repro_lat_bucket{le="1"}'] == 8
        assert snap['repro_lat_bucket{le="+Inf"}'] == 24

    def test_merge_copies_unseen_series(self):
        parent = MetricsRegistry()
        other = MetricsRegistry()
        c = other.counter("repro_new")
        c.inc(5)
        parent.merge(other)
        c.inc(100)  # mutating the source must not leak into the parent
        assert parent.snapshot()["repro_new"] == 5

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("repro_h", buckets=(1, 2))
        bh = b.histogram("repro_h", buckets=(1, 4))
        bh.observe(3)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_advances_seq_counters(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.seq("disk"), b.seq("disk")
        a.merge(b)
        assert a.seq("disk") == "disk3"

    def test_iostats_merge_and_pickle(self):
        import pickle
        from repro.storage.disk import IOStats
        s = IOStats()
        s.add(read_bytes=100, read_ops=2, retries=1)
        clone = pickle.loads(pickle.dumps(s))
        assert clone.read_bytes == 100 and clone.retries == 1
        total = IOStats()
        total.merge(s)
        total.merge(clone)
        assert total.read_bytes == 200 and total.read_ops == 4
        assert total.retries == 2

    def test_iostats_mirror_forwards_named_fields(self):
        from repro.storage.disk import IOStats
        logical = IOStats()
        shard = IOStats()
        shard.mirror = (logical, ("retries",))
        shard.add(read_bytes=64, retries=2)
        assert logical.retries == 2
        assert logical.read_bytes == 0  # only the named fields forward
