"""Metrics registry: instruments, adoption, exposition, snapshot/diff."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)


@pytest.fixture(autouse=True)
def no_ambient_registry():
    metrics.uninstall()
    yield
    metrics.uninstall()


class TestInstruments:
    def test_counter(self):
        c = Counter("repro_x", {"disk": "d1"})
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert c.series() == [("repro_x", {"disk": "d1"}, 42)]

    def test_gauge_set_and_dec(self):
        g = Gauge("repro_g")
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8

    def test_histogram_cumulative_buckets(self):
        h = Histogram("repro_h", buckets=(10, 100))
        for v in (5, 5, 50, 500):
            h.observe(v)
        series = {f"{n}{metrics._render_labels(l)}": v
                  for n, l, v in h.series()}
        assert series['repro_h_bucket{le="10"}'] == 2
        assert series['repro_h_bucket{le="100"}'] == 3   # cumulative
        assert series['repro_h_bucket{le="+Inf"}'] == 4
        assert series["repro_h_sum"] == 560
        assert series["repro_h_count"] == 4


class TestRegistry:
    def test_get_or_create_identity(self):
        r = MetricsRegistry()
        a = r.counter("repro_reads", disk="d1")
        b = r.counter("repro_reads", disk="d1")
        assert a is b

    def test_labels_distinguish_series(self):
        r = MetricsRegistry()
        a = r.counter("repro_reads", disk="d1")
        b = r.counter("repro_reads", disk="d2")
        assert a is not b
        a.inc(5)
        assert b.value == 0

    def test_register_adopts_external_instrument(self):
        r = MetricsRegistry()
        c = Counter("repro_io_read_bytes")
        r.register(c)
        c.inc(100)
        assert r.snapshot()["repro_io_read_bytes"] == 100

    def test_rebind_moves_series_without_duplicate(self):
        # The thin-view pattern: a stat holder self-binds with a seq label,
        # then gets rebound with a better one.  The stale key must vanish.
        r = MetricsRegistry()
        c = Counter("repro_apriori_feasible", {"search": "search1"})
        r.register(c)
        c.labels = {"program": "two_matmul"}
        r.register(c)
        snap = r.snapshot()
        assert 'repro_apriori_feasible{program="two_matmul"}' in snap
        assert 'repro_apriori_feasible{search="search1"}' not in snap
        assert len(snap) == 1

    def test_seq_labels_are_unique(self):
        r = MetricsRegistry()
        assert r.seq("pool") == "pool1"
        assert r.seq("pool") == "pool2"
        assert r.seq("disk") == "disk1"

    def test_expose_text_format(self):
        r = MetricsRegistry()
        r.counter("repro_reads", disk="d1").inc(3)
        r.gauge("repro_used").set(2.0)
        text = r.expose_text()
        assert "# TYPE repro_reads counter" in text
        assert 'repro_reads{disk="d1"} 3' in text
        assert "# TYPE repro_used gauge" in text
        assert "repro_used 2\n" in text         # integral floats int-ified
        assert text.endswith("\n")

    def test_snapshot_diff(self):
        r = MetricsRegistry()
        c = r.counter("repro_reads")
        g = r.gauge("repro_used")
        c.inc(10)
        before = r.snapshot()
        c.inc(5)
        delta = r.diff(before)
        assert delta == {"repro_reads": 5}       # zero-delta gauge omitted
        assert g.value == 0


class TestGlobalInstall:
    def test_install_and_use_scoping(self):
        assert metrics.CURRENT is None
        r = metrics.install()
        assert metrics.CURRENT is r
        other = MetricsRegistry()
        with metrics.use(other):
            assert metrics.CURRENT is other
        assert metrics.CURRENT is r
        metrics.uninstall()
        assert metrics.CURRENT is None


class TestThinViews:
    """The engine's stat classes read/write the same instrument objects."""

    def test_iostats_fields_are_instrument_views(self):
        from repro.storage.disk import IOStats
        stats = IOStats()
        stats.read_bytes += 4096
        stats.read_ops += 1
        assert stats.read_bytes == 4096
        r = MetricsRegistry()
        stats.bind(r, disk="d1")
        stats.write_bytes += 100
        snap = r.snapshot()
        assert snap['repro_io_read_bytes{disk="d1"}'] == 4096
        assert snap['repro_io_write_bytes{disk="d1"}'] == 100

    def test_iostats_reset_zeroes_series(self):
        from repro.storage.disk import IOStats
        stats = IOStats()
        stats.read_bytes += 10
        stats.reset()
        assert stats.read_bytes == 0

    def test_pool_stats_registered_when_installed(self):
        from repro.storage.buffer import BufferPool
        r = metrics.install()
        pool = BufferPool(cap_bytes=1 << 20)
        pool.hits += 2
        assert r.snapshot()['repro_pool_hits{pool="pool1"}'] == 2
