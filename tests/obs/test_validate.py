"""Cost-model validation: predicted-vs-actual joins, faults, tolerance."""

import numpy as np
import pytest

from repro.engine import run_program
from repro.obs import trace as obs_trace
from repro.obs.validate import (RESUME_STMT, CostValidation, ValidationRow,
                                actual_io_from_events, validate_cost)
from repro.optimizer import optimize
from repro.report import predicted_vs_actual_csv
from repro.storage import FaultInjector, FaultPolicy, RetryPolicy
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}
BLOCK_BYTES = 6 * 4 * 8          # example1_program(6, 4) block payload


@pytest.fixture(autouse=True)
def no_ambient_obs():
    obs_trace.uninstall()
    yield
    obs_trace.uninstall()


@pytest.fixture(scope="module")
def prog():
    return example1_program(6, 4)


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


@pytest.fixture(scope="module")
def inputs(prog):
    rng = np.random.default_rng(3)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


class TestFaultFreeAudit:
    def test_best_plan_validates_byte_exact(self, prog, result, inputs,
                                            tmp_path):
        report, outputs = run_program(prog, P, result.best(), tmp_path,
                                      inputs, validate=True)
        v = report.validation
        assert isinstance(v, CostValidation)
        assert v.passed
        assert v.tolerance == 0.0
        assert not v.failures()
        total = v.total
        assert total.predicted_read == total.actual_read == report.io.read_bytes
        assert total.predicted_write == total.actual_write == report.io.write_bytes
        truth = (inputs["A"] + inputs["B"]) @ inputs["D"]
        assert np.allclose(outputs["E"], truth)

    def test_row_scopes_cover_every_level(self, prog, result, inputs,
                                          tmp_path):
        report, _ = run_program(prog, P, result.best(), tmp_path, inputs,
                                validate=True)
        scopes = {r.scope for r in report.validation.rows}
        assert "total" in scopes
        assert any(s.startswith("array ") for s in scopes)
        assert any(" x " in s for s in scopes)

    def test_to_csv_and_text(self, prog, result, inputs, tmp_path):
        report, _ = run_program(prog, P, result.best(), tmp_path, inputs,
                                validate=True)
        csv = report.validation.to_csv()
        assert csv.startswith("scope,predicted_read_bytes,actual_read_bytes,"
                              "predicted_write_bytes,actual_write_bytes,ok\n")
        assert '"total"' in csv
        text = report.validation.to_text()
        assert "cost-model validation: PASS" in text

    def test_no_validation_without_flag(self, prog, result, inputs, tmp_path):
        report, _ = run_program(prog, P, result.best(), tmp_path, inputs)
        assert report.validation is None

    def test_ambient_tracer_reused_without_double_count(self, prog, result,
                                                        inputs,
                                                        tmp_path_factory):
        """Two validated runs on one installed tracer: each audit must see
        only its own exec.io events."""
        t = obs_trace.install(obs_trace.Tracer())
        for i in range(2):
            td = tmp_path_factory.mktemp(f"run{i}")
            report, _ = run_program(prog, P, result.best(), td, inputs,
                                    validate=True)
            assert report.validation.passed, f"run {i} double-counted"
        assert sum(1 for e in t.events if e.name == "run_program"
                   and e.ph == "B") == 2


class TestFaultedAudit:
    def test_checksum_healing_reconciles(self, prog, result, inputs,
                                         tmp_path):
        """Satellite (a): each healed checksum failure re-reads one block;
        the audit carries the counters that explain the read-byte excess."""
        inj = FaultInjector(5, [FaultPolicy(match="A.daf", op="read",
                                            corrupt=1.0, max_faults=1)])
        report, outputs = run_program(prog, P, result.best(), tmp_path,
                                      inputs, faults=inj,
                                      retry=RetryPolicy(5, backoff_base=0),
                                      validate=True)
        assert report.io.checksum_failures == 1
        v = report.validation
        assert v.checksum_failures == report.io.checksum_failures
        assert v.retries == report.io.retries
        excess = v.total.actual_read - v.total.predicted_read
        assert excess == report.io.checksum_failures * BLOCK_BYTES
        assert v.total.actual_write == v.total.predicted_write
        # the healed run still computes the right answer
        truth = (inputs["A"] + inputs["B"]) @ inputs["D"]
        assert np.allclose(outputs["E"], truth)
        # ... and the figure-series CSV carries the durability columns
        csv = predicted_vs_actual_csv([
            ("best", v.predicted_io_seconds, v.actual_io_seconds, 0.1,
             report.io.retries, report.io.checksum_failures)])
        header, row = csv.strip().split("\n")
        assert header.endswith("retries,checksum_failures")
        assert row.endswith(f",{report.io.retries},1")

    def test_transient_faults_stay_byte_exact(self, prog, result, inputs,
                                              tmp_path):
        """Failed transient attempts transfer nothing counted, so the audit
        still passes byte-exact."""
        inj = FaultInjector(1, [FaultPolicy(transient=0.2)])
        report, _ = run_program(prog, P, result.best(), tmp_path, inputs,
                                faults=inj,
                                retry=RetryPolicy(8, backoff_base=0),
                                validate=True)
        assert report.io.retries > 0
        assert report.validation.passed
        assert report.validation.retries == report.io.retries

    def test_tolerance_forgives_small_excess(self, prog, result, inputs,
                                             tmp_path):
        inj = FaultInjector(5, [FaultPolicy(match="A.daf", op="read",
                                            corrupt=1.0, max_faults=1)])
        report, _ = run_program(prog, P, result.best(), tmp_path, inputs,
                                faults=inj,
                                retry=RetryPolicy(5, backoff_base=0),
                                validate=0.5)
        assert report.validation.tolerance == 0.5
        assert report.validation.passed


class TestJoinLogic:
    """validate_cost is duck-typed: drive it with a real plan + fake events."""

    @pytest.fixture()
    def exec_plan(self, prog, result):
        from repro.codegen import build_executable_plan
        return build_executable_plan(prog, P, result.best())

    def _events_matching(self, exec_plan):
        from repro.obs.validate import predicted_io_by_group
        evs = []
        for (stmt, array), (r, w) in predicted_io_by_group(exec_plan).items():
            if r:
                evs.append({"name": "exec.io", "args": {
                    "stmt": stmt, "array": array, "op": "read", "bytes": r}})
            if w:
                evs.append({"name": "exec.io", "args": {
                    "stmt": stmt, "array": array, "op": "write", "bytes": w}})
        return evs

    def test_dict_events_accepted(self, exec_plan):
        v = validate_cost(exec_plan, self._events_matching(exec_plan))
        assert v.passed

    def test_tampered_events_fail(self, exec_plan):
        evs = self._events_matching(exec_plan)
        evs[0]["args"]["bytes"] += 1
        v = validate_cost(exec_plan, evs)
        assert not v.passed
        assert v.failures()

    def test_resume_rows_reported_not_audited(self, exec_plan):
        evs = self._events_matching(exec_plan)
        evs.append({"name": "exec.io", "args": {
            "stmt": RESUME_STMT, "array": "A", "op": "read", "bytes": 999}})
        v = validate_cost(exec_plan, evs)
        assert v.passed                              # re-warm excluded
        assert len(v.extra_rows) == 1
        assert v.extra_rows[0].actual_read == 999
        assert "(not audited)" in v.to_text()

    def test_non_io_events_ignored(self, exec_plan):
        evs = self._events_matching(exec_plan)
        evs.append({"name": "pool.hit", "args": {"key": "x", "bytes": 12345}})
        assert validate_cost(exec_plan, evs).passed

    def test_io_model_headline_seconds(self, exec_plan):
        from repro.optimizer import IOModel
        v = validate_cost(exec_plan, self._events_matching(exec_plan),
                          io_model=IOModel())
        assert v.predicted_io_seconds == v.actual_io_seconds
        assert v.predicted_io_seconds > 0


class TestHelpers:
    def test_actual_io_groups_by_stmt_and_array(self):
        evs = [
            {"name": "exec.io", "args": {"stmt": "s1", "array": "A",
                                         "op": "read", "bytes": 10}},
            {"name": "exec.io", "args": {"stmt": "s1", "array": "A",
                                         "op": "read", "bytes": 5}},
            {"name": "exec.io", "args": {"stmt": "s1", "array": "C",
                                         "op": "write", "bytes": 7}},
        ]
        groups = actual_io_from_events(evs)
        assert groups == {("s1", "A"): [15, 0], ("s1", "C"): [0, 7]}

    def test_row_within_tolerance(self):
        row = ValidationRow("s", "A", 100, 104, 0, 0)
        assert not row.ok(0.0)
        assert row.ok(0.05)
