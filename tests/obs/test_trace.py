"""Trace bus: events, spans, JSONL sink, Chrome export, global install."""

import json
import threading

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def no_ambient_tracer():
    trace.uninstall()
    yield
    trace.uninstall()


class TestTracer:
    def test_instant_records_args(self):
        t = trace.Tracer()
        ev = t.instant("disk.read", "storage", file="A.daf", bytes=4096)
        assert ev.ph == "i"
        assert ev.cat == "storage"
        assert ev.args == {"file": "A.daf", "bytes": 4096}
        assert t.events == [ev]

    def test_begin_end_tracks_depth(self):
        t = trace.Tracer()
        t.begin("outer")
        t.begin("inner")
        t.end()
        t.end()
        phases = [(e.name, e.ph, e.depth) for e in t.events]
        assert phases == [("outer", "B", 0), ("inner", "B", 1),
                          ("inner", "E", 1), ("outer", "E", 0)]

    def test_end_on_empty_stack_is_noop(self):
        t = trace.Tracer()
        assert t.end() is None
        assert t.events == []

    def test_span_merges_result_dict_into_end_event(self):
        t = trace.Tracer()
        with t.span("level", "optimizer", k=2) as result:
            result["feasible"] = 3
        begin, end = t.events
        assert begin.args == {"k": 2}
        assert end.args == {"feasible": 3}

    def test_span_closes_on_exception(self):
        t = trace.Tracer()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError
        assert [e.ph for e in t.events] == ["B", "E"]

    def test_timestamps_monotonic(self):
        t = trace.Tracer()
        first = t.instant("a")
        second = t.instant("b")
        assert second.ts >= first.ts >= 0.0

    def test_keep_false_drops_events_but_still_sinks(self, tmp_path):
        sink = trace.JsonlSink(tmp_path / "t.jsonl")
        t = trace.Tracer(sink=sink, keep=False)
        t.instant("x")
        t.close()
        assert t.events == []
        assert sink.writes == 1

    def test_depth_is_per_thread(self):
        t = trace.Tracer()
        t.begin("main-span")
        seen = {}

        def worker():
            seen["depth"] = t.instant("from-thread").depth

        th = threading.Thread(target=worker)
        th.start()
        th.join()
        assert seen["depth"] == 0          # the other thread's stack is empty
        assert t.instant("from-main").depth == 1


class TestJsonl:
    def test_sink_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = trace.Tracer(sink=trace.JsonlSink(path))
        with t.span("s", "engine", idx=1):
            t.instant("io", "storage", bytes=10)
        t.close()
        events = trace.read_jsonl(path)
        assert [e["ph"] for e in events] == ["B", "i", "E"]
        assert events[1]["args"] == {"bytes": 10}

    def test_close_is_idempotent(self, tmp_path):
        sink = trace.JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_events_carry_schema_version(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = trace.Tracer(sink=trace.JsonlSink(path))
        t.instant("io", "storage")
        t.close()
        (event,) = trace.read_jsonl(path)
        assert event["v"] == trace.SCHEMA_VERSION

    def test_concurrent_writes_stay_line_atomic(self, tmp_path):
        """Unsynchronized writers through one buffered text handle can
        flush corrupt buffer regions into the file; the sink must
        serialize them (regression: service worker threads share the
        sink)."""
        path = tmp_path / "t.jsonl"
        t = trace.Tracer(sink=trace.JsonlSink(path), keep=False)
        n_threads, per_thread = 8, 500

        def hammer(tid):
            for i in range(per_thread):
                t.instant("io", "storage", tid=tid, i=i, pad="x" * 200)

        threads = [threading.Thread(target=hammer, args=(k,))
                   for k in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        t.close()
        events = trace.read_jsonl(path)  # raises on any mangled line
        assert len(events) == n_threads * per_thread
        seen = {(e["args"]["tid"], e["args"]["i"]) for e in events}
        assert len(seen) == n_threads * per_thread


class TestGlobalInstall:
    def test_module_helpers_noop_when_disabled(self):
        assert trace.CURRENT is None
        trace.instant("nothing")           # must not raise
        with trace.span("nothing") as result:
            assert result == {}

    def test_use_scopes_and_restores(self):
        t = trace.Tracer()
        with trace.use(t):
            assert trace.CURRENT is t
            trace.instant("inside")
        assert trace.CURRENT is None
        assert [e.name for e in t.events] == ["inside"]

    def test_install_uninstall(self):
        t = trace.install(trace.Tracer())
        assert trace.CURRENT is t
        trace.uninstall()
        assert trace.CURRENT is None


class TestChromeExport:
    def test_chrome_trace_shape(self):
        t = trace.Tracer()
        with t.span("phase", "optimizer"):
            t.instant("mark", "engine")
        doc = json.loads(trace.chrome_trace(t.events, pid=42))
        evs = doc["traceEvents"]
        assert [e["ph"] for e in evs] == ["B", "i", "E"]
        assert all(e["pid"] == 42 for e in evs)
        # instants carry thread scope; ts is microseconds
        assert evs[1]["s"] == "t"
        assert evs[-1]["ts"] >= evs[0]["ts"]

    def test_jsonl_to_chrome_writes_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = trace.Tracer(sink=trace.JsonlSink(path))
        t.instant("x", "storage", bytes=1)
        t.close()
        out = tmp_path / "t.chrome.json"
        trace.jsonl_to_chrome(path, out)
        doc = json.loads(out.read_text())
        assert doc["traceEvents"][0]["name"] == "x"
