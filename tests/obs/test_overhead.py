"""Satellite (c): observability is near-free when off and non-perturbing
when on — enabling tracing/metrics must not change the measured I/O."""

import numpy as np
import pytest

from repro import obs
from repro.engine import run_program
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.optimizer import optimize
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}


@pytest.fixture(autouse=True)
def no_ambient_obs():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def prog():
    return example1_program(6, 4)


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


@pytest.fixture(scope="module")
def inputs(prog):
    rng = np.random.default_rng(9)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


class TestDisabledIsFree:
    def test_no_events_no_sink_writes_when_disabled(self, prog, result,
                                                    inputs, tmp_path,
                                                    monkeypatch):
        """With no tracer installed the hot paths must never construct an
        event or touch a sink."""
        calls = {"emit": 0, "write": 0}
        real_emit = obs_trace.Tracer.emit

        def counting_emit(self, *a, **kw):
            calls["emit"] += 1
            return real_emit(self, *a, **kw)

        real_write = obs_trace.JsonlSink.write

        def counting_write(self, ev):
            calls["write"] += 1
            return real_write(self, ev)

        monkeypatch.setattr(obs_trace.Tracer, "emit", counting_emit)
        monkeypatch.setattr(obs_trace.JsonlSink, "write", counting_write)
        assert obs_trace.CURRENT is None
        run_program(prog, P, result.best(), tmp_path, inputs)
        assert calls == {"emit": 0, "write": 0}

    def test_optimizer_emits_nothing_when_disabled(self, prog, monkeypatch):
        calls = {"emit": 0}
        real_emit = obs_trace.Tracer.emit

        def counting_emit(self, *a, **kw):
            calls["emit"] += 1
            return real_emit(self, *a, **kw)

        monkeypatch.setattr(obs_trace.Tracer, "emit", counting_emit)
        optimize(prog, P)
        assert calls["emit"] == 0


class TestEnabledIsNonPerturbing:
    def test_io_identical_with_and_without_obs(self, prog, result, inputs,
                                               tmp_path_factory, tmp_path):
        """Tracing + metrics observe the run; they must not change it."""
        td = tmp_path_factory.mktemp("plain")
        plain, plain_out = run_program(prog, P, result.best(), td, inputs)

        tracer, registry = obs.enable(trace_path=tmp_path / "run.jsonl")
        try:
            td = tmp_path_factory.mktemp("traced")
            traced, traced_out = run_program(prog, P, result.best(), td,
                                             inputs, validate=True)
        finally:
            obs.disable()

        assert traced.io.read_bytes == plain.io.read_bytes
        assert traced.io.write_bytes == plain.io.write_bytes
        assert traced.io.read_ops == plain.io.read_ops
        assert traced.io.write_ops == plain.io.write_ops
        assert traced.pool_hits == plain.pool_hits
        for name in plain_out:
            assert np.array_equal(plain_out[name], traced_out[name])
        assert traced.validation.passed
        # the enabled run actually observed something
        assert any(e.name == "exec.io" for e in tracer.events)
        assert any(k.startswith("repro_io_read_bytes")
                   for k in registry.snapshot())
        assert (tmp_path / "run.jsonl").stat().st_size > 0

    def test_disable_restores_globals(self):
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()
        assert obs_trace.CURRENT is None
        assert obs_metrics.CURRENT is None
