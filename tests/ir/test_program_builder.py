"""Unit tests for the program IR and the builder DSL (Example 1 shapes)."""

import pytest

from repro.exceptions import ProgramError
from repro.ir import AccessType, ArrayKind, ProgramBuilder
from repro.polyhedral import Space
from tests.fixtures import example1_program, reverse_access_program


class TestExample1Shape:
    def setup_method(self):
        self.prog = example1_program()

    def test_statements(self):
        assert [s.name for s in self.prog.statements] == ["s1", "s2"]

    def test_depths(self):
        assert self.prog.statement("s1").depth == 2
        assert self.prog.statement("s2").depth == 3
        assert self.prog.max_depth == 3

    def test_domain_of_s1(self):
        s1 = self.prog.statement("s1")
        dom = s1.domain.bind({"n1": 3, "n2": 2, "n3": 1})
        assert sorted(dom.integer_points()) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_one_write_per_statement(self):
        for s in self.prog.statements:
            assert sum(a.is_write for a in s.accesses) == 1

    def test_guarded_read_of_e(self):
        s2 = self.prog.statement("s2")
        e_reads = [a for a in s2.reads if a.array.name == "E"]
        assert len(e_reads) == 1
        dom = e_reads[0].domain().bind({"n1": 1, "n2": 3, "n3": 1})
        # k >= 1 only
        assert sorted(dom.integer_points()) == [(0, 0, 1), (0, 0, 2)]

    def test_access_block_at(self):
        s2 = self.prog.statement("s2")
        d_read = next(a for a in s2.reads if a.array.name == "D")
        assert d_read.block_at((4, 2, 7), {"n1": 9, "n2": 9, "n3": 9}) == (7, 2)

    def test_positions_are_textual_order(self):
        s1, s2 = self.prog.statements
        assert s1.position == (0, 0, 0)
        assert s2.position == (1, 0, 0, 0)

    def test_array_geometry(self):
        a = self.prog.arrays["A"]
        params = {"n1": 12, "n2": 12, "n3": 1}
        assert a.num_blocks(params) == (12, 12)
        assert a.total_blocks(params) == 144
        assert a.block_bytes == 60 * 40 * 8
        assert a.shape_elems(params) == (720, 480)

    def test_kinds(self):
        assert self.prog.arrays["C"].kind is ArrayKind.INTERMEDIATE
        assert self.prog.arrays["E"].kind is ArrayKind.OUTPUT
        assert self.prog.arrays["A"].kind is ArrayKind.INPUT

    def test_validate_passes(self):
        self.prog.validate()


class TestBuilderErrors:
    def test_two_writes_rejected(self):
        from repro.ir.program import Access, Array, Statement
        from repro.polyhedral import Polyhedron, Space
        arr = Array("X", dims=[4], block_shape=(4,))
        dom = Polyhedron.box(Space(["i"]), {"i": (0, 3)})
        w1 = Access(arr, AccessType.WRITE, ["i"])
        w2 = Access(arr, AccessType.WRITE, ["i"])
        with pytest.raises(ProgramError):
            Statement("s", ["i"], dom, [w1, w2])

    def test_shadowed_loop_var_rejected(self):
        b = ProgramBuilder("bad", params=("n",))
        with pytest.raises(ProgramError):
            with b.loop("i", 0, "n"):
                with b.loop("i", 0, "n"):
                    pass

    def test_loop_var_collides_with_param(self):
        b = ProgramBuilder("bad", params=("n",))
        with pytest.raises(ProgramError):
            with b.loop("n", 0, 5):
                pass

    def test_duplicate_array_rejected(self):
        b = ProgramBuilder("bad", params=("n",))
        b.array("X", dims=("n",), block_shape=(4,))
        with pytest.raises(ProgramError):
            b.array("X", dims=("n",), block_shape=(4,))

    def test_build_with_open_loop_rejected(self):
        b = ProgramBuilder("bad", params=("n",))
        cm = b.loop("i", 0, "n")
        cm.__enter__()
        with pytest.raises(ProgramError):
            b.build()

    def test_out_of_scope_subscript_rejected(self):
        b = ProgramBuilder("bad", params=("n",))
        x = b.array("X", dims=("n",), block_shape=(4,))
        with pytest.raises(ProgramError):
            with b.loop("i", 0, "n"):
                b.statement("s", write=x["q"])  # q is not in scope
            b.build()

    def test_subscript_rank_mismatch(self):
        b = ProgramBuilder("bad", params=("n",))
        x = b.array("X", dims=("n", "n"), block_shape=(4, 4))
        with pytest.raises(ProgramError):
            with b.loop("i", 0, "n"):
                b.statement("s", write=x["i"])


class TestGuardContext:
    def test_guard_restricts_domain(self):
        b = ProgramBuilder("guarded", params=("n",))
        x = b.array("X", dims=("n",), block_shape=(4,), kind="output")
        with b.loop("i", 0, "n"):
            with b.guard("i - 2"):  # i >= 2
                b.statement("s", kernel="touch", write=x["i"])
        prog = b.build()
        dom = prog.statement("s").domain.bind({"n": 5})
        assert sorted(dom.integer_points()) == [(2,), (3,), (4,)]

    def test_guard_is_scoped(self):
        b = ProgramBuilder("guarded", params=("n",))
        x = b.array("X", dims=("n",), block_shape=(4,), kind="output")
        with b.loop("i", 0, "n"):
            with b.guard("i - 2"):
                b.statement("s1", kernel="touch", write=x["i"])
            b.statement("s2", kernel="touch", write=x["i"])
        prog = b.build()
        assert prog.statement("s2").domain.bind({"n": 5}).count_integer_points() == 5


class TestReverseProgram:
    def test_builds(self):
        prog = reverse_access_program()
        assert len(prog.statements) == 2
        s1, s2 = prog.statements
        # Same loop: positions share the loop beta, differ in trailing slot.
        assert s1.position == (0, 0)
        assert s2.position == (0, 1)

    def test_reverse_subscript(self):
        prog = reverse_access_program()
        s2 = prog.statement("s2")
        (a_read,) = s2.reads
        assert a_read.block_at((1,), {"n": 5}) == (3,)
