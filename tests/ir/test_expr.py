"""Unit tests for affine expressions and the mini-parser."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProgramError
from repro.ir import AffineExpr, affine
from repro.polyhedral import Space


class TestParsing:
    def test_single_var(self):
        assert affine("i") == AffineExpr.var("i")

    def test_constant(self):
        assert affine("42") == AffineExpr.constant(42)

    def test_sum_and_difference(self):
        e = affine("n1 - 1 - i")
        assert e.coeffs == {"n1": 1, "i": -1}
        assert e.const == -1

    def test_scaled_var(self):
        e = affine("2*k + 3")
        assert e.coeffs == {"k": 2}
        assert e.const == 3

    def test_parentheses(self):
        e = affine("2*(i - 1) + j")
        assert e.coeffs == {"i": 2, "j": 1}
        assert e.const == -2

    def test_leading_minus(self):
        assert affine("-i").coeffs == {"i": -1}

    def test_primed_names(self):
        e = affine("i' - i")
        assert e.coeffs == {"i'": 1, "i": -1}

    def test_garbage_rejected(self):
        with pytest.raises(ProgramError):
            affine("i @ j")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ProgramError):
            affine("(i + 1")

    def test_nonlinear_rejected(self):
        with pytest.raises(ProgramError):
            affine("i * j")


class TestArithmetic:
    def test_add(self):
        e = affine("i") + affine("j") + 2
        assert e.coeffs == {"i": 1, "j": 1}
        assert e.const == 2

    def test_sub_cancels(self):
        e = affine("i") - affine("i")
        assert e.is_constant() and e.const == 0

    def test_mul_scalar(self):
        e = affine("i + 1") * 3
        assert e.coeffs == {"i": 3} and e.const == 3

    def test_rsub(self):
        e = 5 - affine("i")
        assert e.coeffs == {"i": -1} and e.const == 5

    def test_mul_by_constant_expr(self):
        e = affine("i") * affine("3")
        assert e.coeffs == {"i": 3}


class TestEvaluation:
    def test_evaluate(self):
        e = affine("2*i - j + 1")
        assert e.evaluate({"i": 3, "j": 4}) == 3

    def test_evaluate_unbound_raises(self):
        with pytest.raises(ProgramError):
            affine("i").evaluate({})

    def test_substitute(self):
        e = affine("i + j").substitute({"i": affine("k + 1")})
        assert e.coeffs == {"k": 1, "j": 1} and e.const == 1

    def test_to_row(self):
        space = Space(["i", "j"])
        assert affine("2*j - 1").to_row(space) == [0, 2, -1]

    def test_variables(self):
        assert affine("i - j + n").variables() == {"i", "j", "n"}


@settings(max_examples=50, deadline=None)
@given(st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9),
       st.integers(-5, 5), st.integers(-5, 5))
def test_parse_evaluate_roundtrip(a, b, c, i, j):
    text = f"{a}*i + {b}*j + {c}".replace("+ -", "- ")
    e = affine(text)
    assert e.evaluate({"i": i, "j": j}) == a * i + b * j + c
