"""Tests for the pseudo-code front end (Clan-role parser)."""

import numpy as np
import pytest

from repro.engine import reference_outputs
from repro.exceptions import ProgramError
from repro.ir.parser import ArraySpec, parse_program

EXAMPLE1 = """
for (i = 0; i < n1; ++i)
  for (k = 0; k < n2; ++k)
    C[i,k] = A[i,k] + B[i,k];   // s1
for (i = 0; i < n1; ++i)
  for (j = 0; j < n3; ++j)
    for (k = 0; k < n2; ++k)
      E[i,j] += C[i,k] * D[k,j];  // s2
"""

EXAMPLE1_ARRAYS = {
    "A": ArraySpec(("n1", "n2"), (6, 4)),
    "B": ArraySpec(("n1", "n2"), (6, 4)),
    "C": ArraySpec(("n1", "n2"), (6, 4), kind="intermediate"),
    "D": ArraySpec(("n2", "n3"), (4, 5)),
    "E": ArraySpec(("n1", "n3"), (6, 5), kind="output"),
}


@pytest.fixture(scope="module")
def example1():
    return parse_program("example1", EXAMPLE1, ("n1", "n2", "n3"),
                         EXAMPLE1_ARRAYS)


class TestExample1Parse:
    def test_statements(self, example1):
        assert [s.name for s in example1.statements] == ["s1", "s2"]
        assert example1.statement("s1").kernel == "add"
        assert example1.statement("s2").kernel == "gemm_nn"

    def test_depths(self, example1):
        assert example1.statement("s1").depth == 2
        assert example1.statement("s2").depth == 3

    def test_accumulator_guard(self, example1):
        """E's self-read exists only for k >= 1 (footnote 1)."""
        s2 = example1.statement("s2")
        e_reads = [a for a in s2.reads if a.array.name == "E"]
        assert len(e_reads) == 1
        dom = e_reads[0].domain().bind({"n1": 1, "n2": 3, "n3": 1})
        assert sorted(p[2] for p in dom.integer_points()) == [1, 2]

    def test_semantics_match_builder_version(self, example1):
        params = {"n1": 2, "n2": 2, "n3": 2}
        rng = np.random.default_rng(0)
        inputs = {n: rng.standard_normal(example1.arrays[n].shape_elems(params))
                  for n in ("A", "B", "D")}
        out = reference_outputs(example1, params, inputs)
        assert np.allclose(out["E"], (inputs["A"] + inputs["B"]) @ inputs["D"])

    def test_optimizer_runs_on_parsed_program(self, example1):
        from repro import optimize
        result = optimize(example1, {"n1": 2, "n2": 2, "n3": 1})
        assert len(result.plans) >= 8
        assert set(result.best().realized_labels) == {
            "s1WC->s2RC", "s2WE->s2RE", "s2WE->s2WE"}


class TestSyntaxForms:
    def test_le_bound_and_braces(self):
        src = """
        for (i = 0; i <= n - 1; ++i) {
          Y[i] = X[i];
        }
        """
        prog = parse_program("p", src, ("n",),
                             {"X": ArraySpec(("n",), (4,)),
                              "Y": ArraySpec(("n",), (4,), kind="output")})
        dom = prog.statement("s1").domain.bind({"n": 3})
        assert dom.count_integer_points() == 3

    def test_if_guard(self):
        src = """
        for (i = 0; i < n; ++i)
          if (i >= 2 && i < n - 1)
            Y[i] = X[i];
        """
        prog = parse_program("p", src, ("n",),
                             {"X": ArraySpec(("n",), (4,)),
                              "Y": ArraySpec(("n",), (4,), kind="output")})
        dom = prog.statement("s1").domain.bind({"n": 6})
        assert sorted(p[0] for p in dom.integer_points()) == [2, 3, 4]

    def test_if_equality(self):
        src = """
        for (i = 0; i < n; ++i)
          if (i == 0)
            Y[i] = X[i];
        """
        prog = parse_program("p", src, ("n",),
                             {"X": ArraySpec(("n",), (4,)),
                              "Y": ArraySpec(("n",), (4,), kind="output")})
        dom = prog.statement("s1").domain.bind({"n": 6})
        assert dom.count_integer_points() == 1

    def test_reverse_subscripts(self):
        src = """
        for (i = 0; i < n; ++i) {
          A[i] = B[i];          // s1
          C[i] = A[n - 1 - i];  // s2
        }
        """
        prog = parse_program("rev", src, ("n",),
                             {"A": ArraySpec(("n",), (4,), kind="intermediate"),
                              "B": ArraySpec(("n",), (4,)),
                              "C": ArraySpec(("n",), (4,), kind="output")})
        (a_read,) = prog.statement("s2").reads
        assert a_read.block_at((1,), {"n": 5}) == (3,)

    def test_plus_equals_single_operand(self):
        src = """
        for (k = 0; k < n; ++k)
          S[0] += X[k];
        """
        prog = parse_program("sum", src, ("n",),
                             {"X": ArraySpec(("n",), (4,)),
                              "S": ArraySpec((1,), (4,), kind="output")})
        assert prog.statement("s1").kernel == "copy_acc"
        params = {"n": 3}
        x = np.arange(12.0)
        out = reference_outputs(prog, params, {"X": x})
        assert np.allclose(out["S"], x[0:4] + x[4:8] + x[8:12])


class TestParserErrors:
    def test_undeclared_array(self):
        with pytest.raises(ProgramError):
            parse_program("p", "Z[0] = Z[0];", (), {})

    def test_unsupported_comparison(self):
        src = "for (i = n; i > 0; ++i) Y[i] = Y[i];"
        with pytest.raises(ProgramError):
            parse_program("p", src, ("n",),
                          {"Y": ArraySpec(("n",), (4,), kind="output")})

    def test_garbage_rejected(self):
        with pytest.raises(ProgramError):
            parse_program("p", "for @ (", ("n",), {})

    def test_multi_reduction_plus_equals_rejected(self):
        src = """
        for (i = 0; i < n; ++i)
          for (j = 0; j < n; ++j)
            S[0] += X[i,j];
        """
        with pytest.raises(ProgramError):
            parse_program("p", src, ("n",),
                          {"X": ArraySpec(("n", "n"), (2, 2)),
                           "S": ArraySpec((1,), (2,), kind="output")})

    def test_division_rejected(self):
        src = "for (i = 0; i < n; ++i) Y[i] = X[i] / X[i];"
        with pytest.raises(ProgramError):
            parse_program("p", src, ("n",),
                          {"X": ArraySpec(("n",), (4,)),
                           "Y": ArraySpec(("n",), (4,), kind="output")})
