"""Unit tests for schedules: original 2d+1 form, evaluation, precedence."""

from fractions import Fraction

import pytest

from repro.exceptions import ScheduleError
from repro.ir import AffineExpr, Schedule, affine, lex_less, precedence_disjuncts
from repro.polyhedral import Polyhedron, Space
from tests.fixtures import example1_program

PARAMS = {"n1": 3, "n2": 2, "n3": 2}


class TestOriginalSchedule:
    def setup_method(self):
        self.prog = example1_program()
        self.sched = Schedule.original(self.prog)

    def test_row_counts(self):
        assert len(self.sched.rows["s1"]) == 5   # 2d+1, d=2
        assert len(self.sched.rows["s2"]) == 7   # 2d+1, d=3

    def test_time_vectors_order_statements(self):
        s1 = self.prog.statement("s1")
        s2 = self.prog.statement("s2")
        t1 = self.sched.time_vector(s1, (2, 1), PARAMS)     # last s1 instance
        t2 = self.sched.time_vector(s2, (0, 0, 0), PARAMS)  # first s2 instance
        assert lex_less(t1, t2)
        assert not lex_less(t2, t1)

    def test_time_vectors_within_statement(self):
        s2 = self.prog.statement("s2")
        a = self.sched.time_vector(s2, (0, 0, 1), PARAMS)
        b = self.sched.time_vector(s2, (0, 1, 0), PARAMS)
        assert lex_less(a, b)

    def test_access_micro_ordering(self):
        """Within one instance the write happens after the reads."""
        s2 = self.prog.statement("s2")
        write = s2.write
        read = s2.reads[0]
        tw = self.sched.access_time_vector(write, (0, 0, 0), PARAMS)
        tr = self.sched.access_time_vector(read, (0, 0, 0), PARAMS)
        assert lex_less(tr, tw)

    def test_equal_vectors_not_less(self):
        s1 = self.prog.statement("s1")
        t = self.sched.time_vector(s1, (1, 1), PARAMS)
        assert not lex_less(t, t)


class TestRowsInSpace:
    def test_renaming_into_product_space(self):
        prog = example1_program()
        sched = Schedule.original(prog)
        s1 = prog.statement("s1")
        space = Space(["src_i", "src_k", "n1", "n2", "n3"])
        rows = sched.rows_in_space(s1, space, rename={"i": "src_i", "k": "src_k"})
        assert len(rows) == 5
        # Row 1 is the i row: coefficient 1 on src_i.
        assert rows[1][space.index("src_i")] == 1
        assert rows[1][space.index("src_k")] == 0

    def test_micro_row_appended(self):
        prog = example1_program()
        sched = Schedule.original(prog)
        s1 = prog.statement("s1")
        space = Space(["i", "k", "n1", "n2", "n3"])
        rows = sched.rows_in_space(s1, space, micro=1)
        assert len(rows) == 6
        assert rows[-1][-1] == 1
        assert all(v == 0 for v in rows[-1][:-1])


class TestPrecedenceDisjuncts:
    def _space(self):
        return Space(["i", "ip"])

    def _rows(self, exprs, space):
        out = []
        for e in exprs:
            row = [Fraction(0)] * (space.dim + 1)
            for name, c in affine(e).coeffs.items():
                row[space.index(name)] = c
            row[-1] = affine(e).const
            out.append(row)
        return out

    def test_beta_decides_immediately(self):
        space = self._space()
        src = self._rows(["0", "i"], space)
        tgt = self._rows(["1", "ip"], space)
        # 0 < 1 at depth 0 with empty prefix: unconditionally ordered
        assert precedence_disjuncts(src, tgt) is None

    def test_beta_blocks_immediately(self):
        space = self._space()
        src = self._rows(["1", "i"], space)
        tgt = self._rows(["0", "ip"], space)
        assert precedence_disjuncts(src, tgt) == []

    def test_equal_betas_fall_through(self):
        space = self._space()
        src = self._rows(["0", "i", "0"], space)
        tgt = self._rows(["0", "ip", "1"], space)
        disjuncts = precedence_disjuncts(src, tgt)
        # depth 1: i < ip (one ineq); depth 2: i = ip and 0 < 1 (constant true)
        assert len(disjuncts) == 2
        d1, d2 = disjuncts
        assert d1.ineqs and not d1.eqs
        assert d2.eqs and not d2.ineqs

    def test_same_statement_strict(self):
        space = self._space()
        src = self._rows(["0", "i", "0"], space)
        tgt = self._rows(["0", "ip", "0"], space)
        disjuncts = precedence_disjuncts(src, tgt)
        # Only depth 1 can be strict; depth 2 equality-only prefix yields
        # nothing (constants equal, no strict possible).
        assert len(disjuncts) == 1
        poly = Polyhedron(space, eqs=disjuncts[0].eqs, ineqs=disjuncts[0].ineqs)
        assert poly.contains_point([0, 1])
        assert not poly.contains_point([1, 1])
        assert not poly.contains_point([2, 1])

    def test_ambiguous_prefix_raises(self):
        with pytest.raises(ScheduleError):
            lex_less((Fraction(1),), (Fraction(1), Fraction(2)))
