"""Seeded chaos storms against a live service (tier-1 smoke: 3 seeds).

Each seed submits a randomized blend of clean jobs, retry probes with
write faults beyond the disk's retry budget, deadline storms, mid-flight
cancellations and an overload burst, then audits the resilience
invariants (see :mod:`repro.service.chaos`).  ``REPRO_CHAOS_SEEDS``
widens the sweep (the nightly uses 15 seeds).
"""

import json
import os

import pytest

from repro.service.chaos import run_chaos

SEEDS = [int(s) for s in os.environ.get("REPRO_CHAOS_SEEDS", "0 1 2").split()]


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_invariants_hold(seed, tmp_path):
    report = run_chaos(tmp_path, seed)
    assert report.ok, "\n".join(report.violations)
    # The storm actually stormed: something completed AND something was
    # disrupted — a run where every job sailed through proves nothing.
    assert report.completed > 0
    assert (report.cancelled + report.deadline_exceeded
            + report.failed + report.retried) > 0
    # The overload burst was shed with a typed submit-time rejection.
    assert report.shed == 1
    # Conservation: every submitted job resolved to exactly one outcome.
    assert report.submitted == (report.completed + report.failed
                                + report.cancelled
                                + report.deadline_exceeded
                                + report.rejected)


def test_trace_is_replayable_jsonl(tmp_path):
    report = run_chaos(tmp_path, seed=0, jobs=6)
    assert report.trace_path is not None
    events = [json.loads(line)
              for line in open(report.trace_path, encoding="utf-8")]
    kinds = [e["event"] for e in events]
    assert kinds[0] == "baselines"
    assert kinds[-1] == "verdict"
    assert kinds.count("submit") == report.submitted
    assert kinds.count("result") == report.submitted
    assert events[-1]["ok"] == report.ok
    # Timestamps are monotonic — the trace is a timeline, not a bag.
    times = [e["t"] for e in events]
    assert times == sorted(times)
