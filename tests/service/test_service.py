"""Integration tests for :class:`repro.service.ArrayService`.

The acceptance bars from the service's design:

* K concurrent jobs produce outputs byte-identical to serial isolated runs
  (checked at more than one worker count);
* two concurrent jobs sharing a base array issue fewer disk reads than two
  isolated runs (inter-query I/O sharing through the shared pool);
* a repeat submission hits the plan cache and evaluates zero Apriori
  candidates;
* an over-budget job queues (FIFO) rather than runs; a job that can never
  fit is rejected with a typed error, not a hang;
* fault injection and checkpoint/resume compose with the service (one
  journal per job).
"""

import tempfile

import numpy as np
import pytest

from repro import add_multiply_program, optimize, reference_outputs, run_program
from repro.exceptions import (AdmissionRejected, AdmissionTimeout,
                              ServiceClosed, ServiceError, ServiceQueueFull)
from repro.service import ArrayService

P = {"n1": 2, "n2": 2, "n3": 1}
CAP = 4 << 20  # generous per-job cap: every plan fits
SEEDS = (0, 0, 1, 2)  # two identical jobs + two distinct ones


@pytest.fixture(scope="module")
def prog():
    return add_multiply_program()


@pytest.fixture(scope="module")
def best_plan(prog):
    return optimize(prog, P).best(CAP)


def _inputs(prog, seed):
    rng = np.random.default_rng(seed)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


@pytest.fixture(scope="module")
def isolated(prog, best_plan):
    """Serial isolated baseline per distinct seed: outputs + I/O bytes."""
    out = {}
    for seed in sorted(set(SEEDS)):
        with tempfile.TemporaryDirectory() as d:
            report, outputs = run_program(prog, P, best_plan, d,
                                          _inputs(prog, seed),
                                          memory_cap_bytes=CAP,
                                          plan_exact=False)
        out[seed] = (report, outputs)
    return out


class TestByteIdentical:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_concurrent_jobs_match_serial_isolated_runs(
            self, prog, best_plan, isolated, workers, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=4 * CAP,
                          workers=workers) as svc:
            futures = [svc.submit(prog, P, _inputs(prog, seed),
                                  plan=best_plan) for seed in SEEDS]
            results = [f.result(timeout=120) for f in futures]
        for seed, r in zip(SEEDS, results):
            _, expected = isolated[seed]
            assert set(r.outputs) == set(expected)
            for name in expected:
                assert np.array_equal(r.outputs[name], expected[name]), \
                    f"{r.job}: output {name} diverged from isolated run"

    def test_outputs_numerically_correct(self, prog, best_plan, tmp_path):
        inputs = _inputs(prog, 3)
        expected = reference_outputs(prog, P, inputs)
        with ArrayService(tmp_path, memory_cap_bytes=2 * CAP) as svc:
            r = svc.run(prog, P, inputs, plan=best_plan)
        for name in r.outputs:
            assert np.allclose(r.outputs[name], expected[name])


class TestSharing:
    def test_two_jobs_share_base_array_reads(self, prog, best_plan,
                                             isolated, tmp_path):
        iso_reads = isolated[0][0].io.read_bytes
        with ArrayService(tmp_path, memory_cap_bytes=4 * CAP,
                          workers=2) as svc:
            futures = [svc.submit(prog, P, _inputs(prog, 0), plan=best_plan)
                       for _ in range(2)]
            r1, r2 = (f.result(timeout=120) for f in futures)
        total = r1.report.io.read_bytes + r2.report.io.read_bytes
        assert total < 2 * iso_reads, \
            f"no sharing: {total} reads vs 2x{iso_reads} isolated"
        # Whatever one job skipped reading, it found in the shared pool.
        assert r1.report.pool_hits + r2.report.pool_hits > 0

    def test_distinct_inputs_do_not_alias(self, prog, best_plan, isolated,
                                          tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=4 * CAP,
                          workers=2) as svc:
            f1 = svc.submit(prog, P, _inputs(prog, 1), plan=best_plan)
            f2 = svc.submit(prog, P, _inputs(prog, 2), plan=best_plan)
            r1, r2 = f1.result(timeout=120), f2.result(timeout=120)
        assert np.array_equal(r1.outputs["E"], isolated[1][1]["E"])
        assert np.array_equal(r2.outputs["E"], isolated[2][1]["E"])


class TestPlanCache:
    def test_repeat_submission_hits_cache(self, prog, tmp_path):
        cache_dir = tmp_path / "plans"
        with ArrayService(tmp_path / "svc", memory_cap_bytes=2 * CAP,
                          workers=1, plan_cache=cache_dir) as svc:
            r1 = svc.run(prog, P, _inputs(prog, 0))
            r2 = svc.run(prog, P, _inputs(prog, 0))
        assert not r1.cache_hit
        assert r2.cache_hit
        assert svc.plan_cache.hits == 1
        assert svc.plan_cache.misses == 1
        assert np.allclose(r1.outputs["E"], r2.outputs["E"])

    def test_cache_hit_evaluates_zero_apriori_candidates(self, prog,
                                                         tmp_path):
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            with ArrayService(tmp_path / "svc", memory_cap_bytes=2 * CAP,
                              workers=1,
                              plan_cache=tmp_path / "plans") as svc:
                svc.run(prog, P, _inputs(prog, 0))
                r2 = svc.run(prog, P, _inputs(prog, 0))
        assert r2.cache_hit
        key = f'repro_apriori_candidates_tested{{program="{prog.name}"}}'
        # The hit freshly binds its (empty) search stats over the series:
        # the search ran zero candidates the second time.
        assert registry.snapshot()[key] == 0

    def test_cache_survives_service_restart(self, prog, tmp_path):
        cache_dir = tmp_path / "plans"
        with ArrayService(tmp_path / "a", memory_cap_bytes=2 * CAP,
                          plan_cache=cache_dir) as svc:
            assert not svc.run(prog, P, _inputs(prog, 0)).cache_hit
        with ArrayService(tmp_path / "b", memory_cap_bytes=2 * CAP,
                          plan_cache=cache_dir) as svc:
            assert svc.run(prog, P, _inputs(prog, 0)).cache_hit


class TestAdmission:
    def test_never_fitting_job_rejected_not_hung(self, prog, tmp_path):
        # Plans fit their own generous cap but exceed the service budget.
        with ArrayService(tmp_path, memory_cap_bytes=50_000,
                          workers=1) as svc:
            fut = svc.submit(prog, P, _inputs(prog, 0),
                             memory_cap_bytes=64 << 20)
            with pytest.raises(AdmissionRejected):
                fut.result(timeout=120)
            assert svc.stats.jobs_rejected == 1

    def test_no_plan_under_cap_is_a_typed_rejection(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=1000, workers=1) as svc:
            with pytest.raises(AdmissionRejected):
                svc.run(prog, P, _inputs(prog, 0))

    def test_over_budget_job_queues_until_budget_frees(self, prog, best_plan,
                                                       tmp_path):
        need = best_plan.cost.memory_bytes
        with ArrayService(tmp_path, memory_cap_bytes=need + 1000,
                          workers=2) as svc:
            svc._admit(need, None)  # occupy: only ~1000 bytes remain
            fut = svc.submit(prog, P, _inputs(prog, 0), plan=best_plan)
            assert fut.done() is False or fut.exception() is None
            assert svc.queue_depth() <= 1
            svc._release_admission(need)  # budget frees -> job proceeds
            r = fut.result(timeout=120)
            assert r.admission_wait_seconds >= 0
            assert svc.stats.jobs_completed == 1

    def test_admission_timeout_is_typed(self, prog, best_plan, tmp_path):
        need = best_plan.cost.memory_bytes
        with ArrayService(tmp_path, memory_cap_bytes=need + 1000,
                          workers=1) as svc:
            svc._admit(need, None)
            fut = svc.submit(prog, P, _inputs(prog, 0), plan=best_plan,
                             admission_timeout=0.05)
            with pytest.raises(AdmissionTimeout):
                fut.result(timeout=120)
            svc._release_admission(need)
            assert svc.stats.jobs_rejected == 1
            assert svc.queue_depth() == 0

    def test_bounded_backlog_rejects_submit(self, prog, best_plan, tmp_path):
        need = best_plan.cost.memory_bytes
        with ArrayService(tmp_path, memory_cap_bytes=need + 1000,
                          workers=1, max_pending=1) as svc:
            svc._admit(need, None)  # park the first job in admission
            fut = svc.submit(prog, P, _inputs(prog, 0), plan=best_plan)
            with pytest.raises(ServiceQueueFull):
                svc.submit(prog, P, _inputs(prog, 0), plan=best_plan)
            svc._release_admission(need)
            fut.result(timeout=120)

    def test_admitted_bytes_return_to_zero(self, prog, best_plan, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=2 * CAP) as svc:
            svc.run(prog, P, _inputs(prog, 0), plan=best_plan)
            assert svc.admitted_bytes() == 0
            assert svc.stats.active_jobs == 0


class TestLifecycle:
    def test_submit_after_shutdown_raises(self, prog, tmp_path):
        svc = ArrayService(tmp_path, memory_cap_bytes=CAP)
        svc.shutdown()
        with pytest.raises(ServiceClosed):
            svc.submit(prog, P, _inputs(prog, 0))

    def test_shutdown_wakes_queued_jobs(self, prog, best_plan, tmp_path):
        import threading

        need = best_plan.cost.memory_bytes
        svc = ArrayService(tmp_path, memory_cap_bytes=need + 1000, workers=1)
        svc._admit(need, None)
        fut = svc.submit(prog, P, _inputs(prog, 0), plan=best_plan)
        t = threading.Thread(target=svc.shutdown)
        t.start()
        with pytest.raises(ServiceClosed):
            fut.result(timeout=120)
        t.join(timeout=120)
        assert not t.is_alive()

    def test_duplicate_inflight_name_rejected(self, prog, best_plan,
                                              tmp_path):
        need = best_plan.cost.memory_bytes
        with ArrayService(tmp_path, memory_cap_bytes=need + 1000,
                          workers=1) as svc:
            svc._admit(need, None)
            fut = svc.submit(prog, P, _inputs(prog, 0), plan=best_plan,
                             name="dup")
            with pytest.raises(ServiceError):
                svc.submit(prog, P, _inputs(prog, 0), plan=best_plan,
                           name="dup")
            svc._release_admission(need)
            fut.result(timeout=120)

    def test_failed_job_counted_and_pins_swept(self, prog, best_plan,
                                               tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=2 * CAP) as svc:
            with pytest.raises(ServiceError):
                svc.run(prog, P, {}, plan=best_plan)  # missing inputs
            assert svc.stats.jobs_failed == 1
            assert svc.admitted_bytes() == 0


class TestFaultToleranceComposition:
    def test_fault_injection_composes(self, prog, best_plan, tmp_path):
        from repro.storage import FaultInjector

        inputs = _inputs(prog, 0)
        expected = reference_outputs(prog, P, inputs)
        # rate=0.5: with only ~14 counted ops per job, the default 5% rate
        # can legitimately fire zero faults — force real retry traffic.
        with ArrayService(tmp_path, memory_cap_bytes=2 * CAP, workers=2,
                          faults=FaultInjector.transient(seed=11,
                                                         rate=0.5)) as svc:
            futures = [svc.submit(prog, P, inputs, plan=best_plan)
                       for _ in range(2)]
            results = [f.result(timeout=120) for f in futures]
        for r in results:
            assert np.allclose(r.outputs["E"], expected["E"])
        assert svc.disk.stats.retries > 0  # faults actually fired

    def test_checkpoint_writes_one_journal_per_job(self, prog, best_plan,
                                                   tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=2 * CAP,
                          workers=2) as svc:
            futures = [svc.submit(prog, P, _inputs(prog, 0), plan=best_plan,
                                  name=f"ck{i}", checkpoint=True)
                       for i in range(2)]
            for f in futures:
                f.result(timeout=120)
        for i in range(2):
            assert (tmp_path / "jobs" / f"ck{i}"
                    / "execution.journal").exists()

    def test_resume_completed_job_skips_all_instances(self, prog, best_plan,
                                                      tmp_path):
        inputs = _inputs(prog, 0)
        with ArrayService(tmp_path, memory_cap_bytes=2 * CAP) as svc:
            first = svc.run(prog, P, inputs, plan=best_plan, name="r1",
                            checkpoint=True)
            again = svc.run(prog, P, inputs, plan=best_plan, name="r1",
                            resume=True)
        assert first.report.resumed_from == 0
        assert again.report.resumed_from > 0
        assert again.report.instances < first.report.instances
        assert np.array_equal(first.outputs["E"], again.outputs["E"])


class TestPrefetch:
    def test_prefetched_job_correct_and_staged(self, prog, best_plan,
                                               tmp_path):
        inputs = _inputs(prog, 5)
        expected = reference_outputs(prog, P, inputs)
        with ArrayService(tmp_path, memory_cap_bytes=2 * CAP) as svc:
            r = svc.run(prog, P, inputs, plan=best_plan, prefetch_depth=2)
        for name in r.outputs:
            assert np.allclose(r.outputs[name], expected[name])
        assert r.report.prefetch is not None
        assert r.report.prefetch.failed == 0
        assert (r.report.prefetch.staged_blocks
                + r.report.prefetch.taken_by_main) > 0

    def test_service_default_depth_applies_to_all_jobs(self, prog, best_plan,
                                                       tmp_path):
        inputs = _inputs(prog, 5)
        with ArrayService(tmp_path, memory_cap_bytes=2 * CAP,
                          prefetch_depth=2) as svc:
            r = svc.run(prog, P, inputs, plan=best_plan)
        assert r.report.prefetch is not None

    def test_prefetch_budget_charged_to_admission(self, prog, best_plan,
                                                  tmp_path):
        """The staging budget is real memory: a job that fits serially but
        not with its prefetch carve-out must be rejected, not admitted past
        the cap."""
        mem = best_plan.cost.memory_bytes
        bb = max(arr.block_bytes for arr in prog.arrays.values())
        cap = mem + bb  # room for the plan, not for a 2-deep carve-out
        inputs = _inputs(prog, 5)
        with ArrayService(tmp_path, memory_cap_bytes=cap) as svc:
            r = svc.run(prog, P, inputs, plan=best_plan)  # serial: fits
            assert r.report.prefetch is None
            with pytest.raises(AdmissionRejected):
                svc.run(prog, P, inputs, plan=best_plan, prefetch_depth=2)

    def test_negative_depth_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            ArrayService(tmp_path, memory_cap_bytes=CAP, prefetch_depth=-1)


class TestAdmissionResilience:
    def test_close_wakes_long_timeout_waiter_immediately(self, prog,
                                                         best_plan,
                                                         tmp_path):
        """A waiter parked with a 300 s admission timeout must resolve with
        ServiceClosed the moment the service closes — not after 300 s."""
        import threading
        import time

        need = best_plan.cost.memory_bytes
        svc = ArrayService(tmp_path, memory_cap_bytes=need + 1000, workers=1)
        svc._admit(need, None)  # occupy: the job below parks in admission
        fut = svc.submit(prog, P, _inputs(prog, 0), plan=best_plan,
                         admission_timeout=300.0)
        deadline = time.monotonic() + 10
        while svc.queue_depth() == 0:
            assert time.monotonic() < deadline, "job never queued"
            time.sleep(0.005)
        t0 = time.monotonic()
        t = threading.Thread(target=svc.shutdown)
        t.start()
        with pytest.raises(ServiceClosed):
            fut.result(timeout=60)
        assert time.monotonic() - t0 < 10.0, \
            "close() did not promptly wake the admission waiter"
        t.join(timeout=60)
        assert not t.is_alive()

    def test_fifo_fairness_under_mixed_timeouts(self, prog, best_plan,
                                                tmp_path):
        """A queue head that times out must not starve the tickets behind
        it: its budget claim is withdrawn in ``finally`` and the freed
        budget re-offered to the (new) head of the queue."""
        import time

        from repro.exceptions import AdmissionTimeout as _AT

        need = best_plan.cost.memory_bytes
        with ArrayService(tmp_path, memory_cap_bytes=need + 1000,
                          workers=3) as svc:
            svc._admit(need, None)  # occupy so every job queues
            try:
                impatient = svc.submit(prog, P, _inputs(prog, 0),
                                       plan=best_plan,
                                       admission_timeout=0.05)
                deadline = time.monotonic() + 10
                while svc.queue_depth() == 0:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                patient = [svc.submit(prog, P, _inputs(prog, s),
                                      plan=best_plan,
                                      admission_timeout=120.0)
                           for s in (1, 2)]
                with pytest.raises(_AT):
                    impatient.result(timeout=60)
            finally:
                svc._release_admission(need)
            # With the head's claim withdrawn the freed budget flows to
            # the patient tickets in order; both must complete.
            for fut in patient:
                r = fut.result(timeout=120)
                assert r.attempts == 1
            assert svc.queue_depth() == 0
            assert svc.admitted_bytes() == 0
            assert svc.stats.jobs_rejected == 1
            assert svc.stats.jobs_completed == 2
