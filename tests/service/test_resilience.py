"""Resilience tests: deadlines, cancellation, retry-with-resume, overload
degradation and circuit breaking for :class:`repro.service.ArrayService`.

The contract under test:

* deadlines and caller cancellation resolve futures with *typed* errors
  (never stdlib ``CancelledError``) and release every admitted byte;
* a job queued in admission wakes promptly on cancel — it does not sit
  out its full admission timeout;
* transient failures (fault-injector storms beyond the disk's own retry
  budget) are retried through the checkpoint journal so only unfinished
  instances re-execute; permanent errors are never retried;
* under overload the service degrades by policy: shed new submissions,
  throttle prefetch, plan-cache-only planning, per-store breakers.
"""

import time

import numpy as np
import pytest

from repro import add_multiply_program, optimize, reference_outputs
from repro.exceptions import (CircuitOpen, CorruptBlockError,
                              DeadlineExceeded, JobCancelled,
                              OptimizationError, ProgramError, ServiceClosed,
                              ServiceError, ServiceOverloaded, StorageError,
                              TransientIOError)
from repro.service import ArrayService
from repro.service.resilience import (PERMANENT, TRANSIENT, CircuitBreaker,
                                      DegradePolicy, JobRetryPolicy,
                                      classify_error)
from repro.storage import FaultInjector
from repro.storage.faults import FaultPolicy

P = {"n1": 2, "n2": 2, "n3": 1}
CAP = 4 << 20


@pytest.fixture(scope="module")
def prog():
    return add_multiply_program()


@pytest.fixture(scope="module")
def best_plan(prog):
    return optimize(prog, P).best(CAP)


def _inputs(prog, seed):
    rng = np.random.default_rng(seed)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


class TestDeadlines:
    def test_expired_deadline_is_typed_and_counted(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP) as svc:
            h = svc.submit(prog, P, _inputs(prog, 0), timeout=1e-6)
            with pytest.raises(DeadlineExceeded):
                h.result(timeout=60)
            assert svc.stats.jobs_deadline_exceeded == 1
            assert svc.stats.jobs_cancelled == 0
            assert svc.admitted_bytes() == 0

    def test_absolute_deadline_equivalent(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP) as svc:
            h = svc.submit(prog, P, _inputs(prog, 0),
                           deadline=time.monotonic() - 1.0)
            with pytest.raises(DeadlineExceeded):
                h.result(timeout=60)

    def test_service_default_timeout_applies(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP,
                          job_timeout=1e-6) as svc:
            h = svc.submit(prog, P, _inputs(prog, 0))
            with pytest.raises(DeadlineExceeded):
                h.result(timeout=60)

    def test_generous_deadline_completes(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP) as svc:
            r = svc.submit(prog, P, _inputs(prog, 0),
                           timeout=120.0).result(timeout=120)
            assert r.attempts == 1

    def test_deadline_storm_releases_all_budget(self, prog, best_plan,
                                                tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP,
                          workers=2) as svc:
            handles = [svc.submit(prog, P, _inputs(prog, i % 2),
                                  plan=best_plan, timeout=1e-6)
                       for i in range(8)]
            outcomes = []
            for h in handles:
                try:
                    h.result(timeout=60)
                    outcomes.append("done")
                except DeadlineExceeded:
                    outcomes.append("deadline")
            assert "deadline" in outcomes
            assert svc.admitted_bytes() == 0
            assert svc.queue_depth() == 0
            assert svc.pool.total_pins() == 0
            assert svc.pool.staged_marks() == 0


class TestCancellation:
    def test_cancel_resolves_with_typed_error(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP) as svc:
            h = svc.submit(prog, P, _inputs(prog, 0))
            assert h.cancel("caller changed its mind") is True
            try:
                h.result(timeout=60)
            except JobCancelled as err:
                assert "changed its mind" in str(err)
                assert not isinstance(err, DeadlineExceeded)
                assert svc.stats.jobs_cancelled == 1
            else:  # raced to completion before the checkpoint — also legal
                assert svc.stats.jobs_completed == 1
            assert svc.admitted_bytes() == 0

    def test_cancel_after_done_returns_false(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP) as svc:
            h = svc.submit(prog, P, _inputs(prog, 0))
            h.result(timeout=120)
            assert h.cancel() is False

    def test_cancel_wakes_admission_waiter_promptly(self, prog, best_plan,
                                                    tmp_path):
        need = best_plan.cost.memory_bytes
        with ArrayService(tmp_path, memory_cap_bytes=need + 1000,
                          workers=1) as svc:
            svc._admit(need, None)  # occupy: the job below must queue
            try:
                h = svc.submit(prog, P, _inputs(prog, 0), plan=best_plan,
                               admission_timeout=60.0)
                deadline = time.monotonic() + 10
                while svc.queue_depth() == 0:
                    assert time.monotonic() < deadline, "job never queued"
                    time.sleep(0.005)
                t0 = time.monotonic()
                h.cancel("stop waiting")
                with pytest.raises(JobCancelled):
                    h.result(timeout=60)
                # Far below the 60 s admission timeout: the cancel
                # subscription notifies the condition, not a poll.
                assert time.monotonic() - t0 < 5.0
                assert svc.queue_depth() == 0
            finally:
                svc._release_admission(need)


class TestRetryWithResume:
    def _probe_injector(self, seed=7):
        # Transient write faults deep enough to exhaust the disk's retry
        # budget (max_retries=4 -> 5 attempts) once, then clear.
        return FaultInjector(seed=seed, policies=[
            FaultPolicy(match="probe__*", op="write", transient=1.0,
                        after=1, max_faults=6)])

    def test_transient_failure_retried_via_resume(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP, workers=1,
                          faults=self._probe_injector()) as svc:
            r = svc.submit(prog, P, _inputs(prog, 0), name="probe",
                           retry=JobRetryPolicy(max_attempts=3,
                                                backoff_base=0.001)
                           ).result(timeout=120)
            assert r.attempts == 2
            # The journal fixpoint: attempt 2 skipped everything attempt 1
            # already committed and re-executed only the rest.
            assert r.report.resumed_from > 0
            assert svc.stats.retries_attempted == 1
            assert svc.stats.retries_exhausted == 0
            expected = reference_outputs(prog, P, _inputs(prog, 0))
            for name in r.outputs:
                assert np.allclose(r.outputs[name], expected[name])

    def test_int_retry_shorthand(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP, workers=1,
                          faults=self._probe_injector()) as svc:
            r = svc.submit(prog, P, _inputs(prog, 0), name="probe",
                           retry=3).result(timeout=120)
            assert r.attempts == 2

    def test_exhausted_retries_surface_the_error(self, prog, tmp_path):
        injector = FaultInjector(seed=7, policies=[
            FaultPolicy(match="probe__*", op="write", transient=1.0)])
        with ArrayService(tmp_path, memory_cap_bytes=CAP, workers=1,
                          faults=injector) as svc:
            with pytest.raises(StorageError):
                svc.submit(prog, P, _inputs(prog, 0), name="probe",
                           retry=JobRetryPolicy(max_attempts=2,
                                                backoff_base=0.001)
                           ).result(timeout=120)
            assert svc.stats.retries_attempted == 1
            assert svc.stats.retries_exhausted == 1
            assert svc.stats.jobs_failed == 1

    def test_permanent_error_not_retried(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP, workers=1,
                          job_retry=3) as svc:
            with pytest.raises(ServiceError):
                # Missing inputs is permanent: retrying cannot help.
                svc.submit(prog, P, {}).result(timeout=120)
            assert svc.stats.retries_attempted == 0

    def test_service_default_retry_applies(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP, workers=1,
                          faults=self._probe_injector(),
                          job_retry=3) as svc:
            r = svc.submit(prog, P, _inputs(prog, 0),
                           name="probe").result(timeout=120)
            assert r.attempts == 2


class TestClassification:
    def test_transient_errors(self):
        assert classify_error(TransientIOError("flaky")) == TRANSIENT
        assert classify_error(CorruptBlockError("bits flipped")) == TRANSIENT
        exhausted = StorageError("write failed after 5 attempts")
        exhausted.__cause__ = TransientIOError("still flaky")
        assert classify_error(exhausted) == TRANSIENT

    def test_permanent_errors(self):
        assert classify_error(CircuitOpen("store is down")) == PERMANENT
        assert classify_error(OptimizationError("no plan")) == PERMANENT
        assert classify_error(ProgramError("bad IR")) == PERMANENT
        assert classify_error(StorageError("disk is gone")) == PERMANENT
        assert classify_error(ValueError("not even ours")) == PERMANENT

    def test_backoff_schedule(self):
        p = JobRetryPolicy(max_attempts=4, backoff_base=0.01,
                           backoff_cap=0.03)
        assert p.delay(1) == pytest.approx(0.01)
        assert p.delay(2) == pytest.approx(0.02)
        assert p.delay(3) == pytest.approx(0.03)  # capped
        assert p.delay(4) == pytest.approx(0.03)


class TestDegradation:
    def test_shed_before_cancel_running(self, prog, tmp_path):
        policy = DegradePolicy(shed_backlog=0)
        with ArrayService(tmp_path, memory_cap_bytes=CAP,
                          degrade=policy) as svc:
            with pytest.raises(ServiceOverloaded):
                svc.submit(prog, P, _inputs(prog, 0))
            assert svc.stats.jobs_shed == 1
            # Shed happens before submission is recorded: the conservation
            # ledger (submitted = sum of outcomes) excludes shed jobs.
            assert svc.stats.jobs_submitted == 0

    def test_plan_cache_only_skips_cold_search(self, prog, tmp_path):
        policy = DegradePolicy(planner_queue_depth=0, shed_backlog=None)
        with ArrayService(tmp_path, memory_cap_bytes=CAP,
                          degrade=policy) as svc:
            r = svc.submit(prog, P, _inputs(prog, 0)).result(timeout=120)
            assert svc.stats.degraded_plans == 1
            # The fallback is the original (share-nothing) plan — correct,
            # just not optimized.
            expected = reference_outputs(prog, P, _inputs(prog, 0))
            for name in r.outputs:
                assert np.allclose(r.outputs[name], expected[name])

    def test_prefetch_throttled_under_memory_pressure(self, prog, best_plan,
                                                      tmp_path):
        policy = DegradePolicy(memory_pressure=0.85, shed_backlog=None,
                               planner_queue_depth=10_000)
        need = best_plan.cost.memory_bytes
        with ArrayService(tmp_path, memory_cap_bytes=2 * need,
                          degrade=policy, prefetch_depth=4) as svc:
            assert svc.health.effective_prefetch_depth(4) == 4
            svc._admit(need, None)  # ~50% pressure -> partial throttle
            try:
                mid = svc.health.effective_prefetch_depth(4)
                assert 0 < mid < 4
                svc._admit(need - 1000, None)  # ~100% -> fully off
                try:
                    assert svc.health.effective_prefetch_depth(4) == 0
                finally:
                    svc._release_admission(need - 1000)
            finally:
                svc._release_admission(need)

    def test_degrade_true_enables_default_policy(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP,
                          degrade=True) as svc:
            assert svc.health.policy is not None
            r = svc.submit(prog, P, _inputs(prog, 0)).result(timeout=120)
            assert r.attempts == 1

    def test_no_policy_means_no_degradation(self, prog, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=CAP) as svc:
            assert svc.health.policy is None
            assert svc.health.should_shed() is False
            assert svc.health.plan_cache_only() is False
            assert svc.health.effective_prefetch_depth(4) == 4
            assert svc.health.breaker_for("anything") is None


class TestCircuitBreaker:
    def _clock(self):
        state = {"t": 0.0}

        def now():
            return state["t"]

        return state, now

    def test_trips_after_threshold_and_recovers(self):
        state, now = self._clock()
        br = CircuitBreaker("X.daf", threshold=3, cooldown=10.0, clock=now)
        assert br.state == "closed"
        for _ in range(3):
            br.allow()
            br.record_failure()
        assert br.state == "open"
        assert br.trips == 1
        with pytest.raises(CircuitOpen):
            br.allow()
        assert br.fastfails == 1
        state["t"] = 11.0  # cooldown elapses -> single half-open probe
        br.allow()
        assert br.state == "half_open"
        with pytest.raises(CircuitOpen):
            br.allow()  # second caller during the probe still fails fast
        br.record_success()
        assert br.state == "closed"
        br.allow()

    def test_half_open_failure_reopens(self):
        state, now = self._clock()
        br = CircuitBreaker("X.daf", threshold=1, cooldown=5.0, clock=now)
        br.allow()
        br.record_failure()
        assert br.state == "open"
        state["t"] = 6.0
        br.allow()
        br.record_failure()
        assert br.state == "open"
        assert br.trips == 2

    def test_success_resets_consecutive_count(self):
        _, now = self._clock()
        br = CircuitBreaker("X.daf", threshold=2, cooldown=5.0, clock=now)
        for _ in range(5):  # fail, succeed, fail, succeed ... never trips
            br.allow()
            br.record_failure()
            br.allow()
            br.record_success()
        assert br.state == "closed"
        assert br.trips == 0

    def test_service_wires_breakers_per_store(self, prog, tmp_path):
        policy = DegradePolicy(shed_backlog=None,
                               planner_queue_depth=10_000,
                               breaker_threshold=2, breaker_cooldown=30.0)
        with ArrayService(tmp_path, memory_cap_bytes=CAP,
                          degrade=policy) as svc:
            br = svc.health.breaker_for("probe__C")
            assert br is svc.health.breaker_for("probe__C")  # cached
            br.record_failure()
            br.record_failure()
            assert br.state == "open"
            assert svc.stats.breaker_trips == 1
            with pytest.raises(CircuitOpen):
                br.allow()
            assert svc.stats.breaker_fastfails == 1
            # CircuitOpen is permanent by classification: a retrying job
            # would stop burning attempts against a dead store.
            assert classify_error(CircuitOpen("down")) == PERMANENT


class TestShutdownResilience:
    def test_close_cancels_running_jobs(self, prog, best_plan, tmp_path):
        svc = ArrayService(tmp_path, memory_cap_bytes=CAP, workers=2)
        handles = [svc.submit(prog, P, _inputs(prog, i % 2), plan=best_plan)
                   for i in range(4)]
        svc.close(cancel_running=True)
        for h in handles:
            try:
                h.result(timeout=60)
            except (JobCancelled, ServiceClosed):
                pass  # typed — never a stdlib CancelledError
        assert svc.admitted_bytes() == 0
