"""Tests for the persistent plan cache and its optimizer hook."""

import pytest

from repro import optimize
from repro.obs import metrics as obs_metrics
from repro.service import PlanCache, optimization_fingerprint
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}
CAP = 4 << 20


@pytest.fixture(scope="module")
def prog():
    return example1_program()


class TestFingerprint:
    def test_stable_across_rebuilds(self, prog):
        assert optimization_fingerprint(prog, P, CAP) == \
            optimization_fingerprint(example1_program(), P, CAP)

    def test_sensitive_to_params_cap_and_knobs(self, prog):
        base = optimization_fingerprint(prog, P, CAP)
        assert optimization_fingerprint(prog, {**P, "n1": 3}, CAP) != base
        assert optimization_fingerprint(prog, P, 2 * CAP) != base
        assert optimization_fingerprint(prog, P, CAP, max_set_size=1) != base

    def test_sensitive_to_io_model(self, prog):
        from repro.optimizer import IOModel
        assert optimization_fingerprint(prog, P, CAP,
                                        IOModel(read_bw=1e6)) != \
            optimization_fingerprint(prog, P, CAP)


class TestCacheThroughOptimize:
    def test_miss_then_hit_skips_apriori(self, prog, tmp_path):
        cache = PlanCache(tmp_path)
        r1 = optimize(prog, P, memory_cap_bytes=CAP, plan_cache=cache)
        assert not r1.cache_hit
        assert r1.stats.candidates_tested > 0
        assert cache.misses == 1 and cache.stores == 1

        r2 = optimize(prog, P, memory_cap_bytes=CAP, plan_cache=cache)
        assert r2.cache_hit
        # The acceptance bar: a hit evaluates ZERO Apriori candidates.
        assert r2.stats.candidates_tested == 0
        assert cache.hits == 1

        b1, b2 = r1.best(CAP), r2.best(CAP)
        assert b1.realized_labels == b2.realized_labels
        assert b1.cost.read_bytes == b2.cost.read_bytes
        assert b1.cost.io_seconds == b2.cost.io_seconds

    def test_hit_resets_registered_apriori_series(self, prog, tmp_path):
        cache = PlanCache(tmp_path)
        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use(registry):
            optimize(prog, P, memory_cap_bytes=CAP, plan_cache=cache)
            optimize(prog, P, memory_cap_bytes=CAP, plan_cache=cache)
        snap = registry.snapshot()
        key = f'repro_apriori_candidates_tested{{program="{prog.name}"}}'
        # The hit's freshly bound stats own the series — and tested nothing.
        assert snap[key] == 0

    def test_different_cap_is_a_different_entry(self, prog, tmp_path):
        cache = PlanCache(tmp_path)
        optimize(prog, P, memory_cap_bytes=CAP, plan_cache=cache)
        r = optimize(prog, P, memory_cap_bytes=2 * CAP, plan_cache=cache)
        assert not r.cache_hit
        assert len(cache) == 2

    def test_corrupt_entry_degrades_to_miss(self, prog, tmp_path):
        cache = PlanCache(tmp_path)
        optimize(prog, P, memory_cap_bytes=CAP, plan_cache=cache)
        fp = optimization_fingerprint(
            prog, P, CAP, None, max_set_size=None, max_candidates=None,
            dead_write_elimination=True, block_bytes=None)
        cache.path_for(fp).write_text("{not json")
        r = optimize(prog, P, memory_cap_bytes=CAP, plan_cache=cache)
        assert not r.cache_hit
        assert r.stats.candidates_tested > 0

    def test_clear(self, prog, tmp_path):
        cache = PlanCache(tmp_path)
        optimize(prog, P, memory_cap_bytes=CAP, plan_cache=cache)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0
