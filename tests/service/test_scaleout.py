"""Scale-out service: process-pool backend parity and sharded service disk.

The acceptance bars from ISSUE 10:

* ``backend="procs"`` produces outputs byte-identical to the thread
  backend, with identical per-job I/O attribution on plan-exact jobs;
* worker metrics merge into the parent registry so process-backend totals
  land on the very series the thread backend increments;
* faults + retry-with-resume, deadlines, and shards compose with the
  process backend;
* the service disk stripes across shards with unchanged results.
"""

import numpy as np
import pytest

from repro import add_multiply_program, optimize, reference_outputs
from repro.exceptions import DeadlineExceeded, ServiceError
from repro.obs import metrics as obs_metrics
from repro.service import ArrayService

P = {"n1": 2, "n2": 2, "n3": 1}
CAP = 4 << 20


@pytest.fixture(autouse=True)
def no_ambient_registry():
    obs_metrics.uninstall()
    yield
    obs_metrics.uninstall()


@pytest.fixture(scope="module")
def prog():
    return add_multiply_program()


@pytest.fixture(scope="module")
def best_plan(prog):
    return optimize(prog, P).best(CAP)


def _inputs(prog, seed):
    rng = np.random.default_rng(seed)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


def _run(svc, prog, seeds, plan):
    futures = [svc.submit(prog, P, _inputs(prog, s), plan=plan)
               for s in seeds]
    return [f.result(timeout=180) for f in futures]


class TestProcsParity:
    def test_outputs_and_attribution_match_threads(self, prog, best_plan,
                                                   tmp_path):
        seeds = (0, 1, 2)
        with ArrayService(tmp_path / "t", memory_cap_bytes=4 * CAP,
                          workers=2) as svc:
            base = _run(svc, prog, seeds, best_plan)
        with ArrayService(tmp_path / "p", memory_cap_bytes=4 * CAP,
                          workers=2, backend="procs") as svc:
            procs = _run(svc, prog, seeds, best_plan)
        for b, p in zip(base, procs):
            for name in b.outputs:
                assert np.array_equal(p.outputs[name], b.outputs[name])
            # Plan-exact attribution is backend-independent.
            assert p.report.io.read_bytes == b.report.io.read_bytes
            assert p.report.io.write_bytes == b.report.io.write_bytes
            assert p.report.io.read_ops == b.report.io.read_ops
            assert p.report.io.write_ops == b.report.io.write_ops

    def test_procs_numerically_correct(self, prog, best_plan, tmp_path):
        inputs = _inputs(prog, 3)
        expected = reference_outputs(prog, P, inputs)
        with ArrayService(tmp_path, memory_cap_bytes=4 * CAP,
                          backend="procs") as svc:
            r = svc.submit(prog, P, inputs, plan=best_plan).result(
                timeout=180)
        for name in r.outputs:
            assert np.allclose(r.outputs[name], expected[name])

    def test_procs_over_sharded_worker_disks(self, prog, best_plan,
                                             tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=4 * CAP, workers=2,
                          backend="procs", shards=2,
                          stripe_bytes=8192) as svc:
            results = _run(svc, prog, (4, 5), best_plan)
        for seed, r in zip((4, 5), results):
            expected = reference_outputs(prog, P, _inputs(prog, seed))
            assert r.outputs
            for name in r.outputs:
                assert np.allclose(r.outputs[name], expected[name])

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            ArrayService(tmp_path, memory_cap_bytes=CAP, backend="mpi")


class TestProcsMetricsMerge:
    def test_worker_series_land_on_parent_registry(self, prog, best_plan,
                                                   tmp_path):
        reg_t = obs_metrics.MetricsRegistry()
        obs_metrics.install(reg_t)
        with ArrayService(tmp_path / "t", memory_cap_bytes=4 * CAP,
                          workers=1) as svc:
            _run(svc, prog, (0, 1), best_plan)
        snap_t = reg_t.snapshot()
        obs_metrics.uninstall()

        reg_p = obs_metrics.MetricsRegistry()
        obs_metrics.install(reg_p)
        with ArrayService(tmp_path / "p", memory_cap_bytes=4 * CAP,
                          workers=1, backend="procs") as svc:
            _run(svc, prog, (0, 1), best_plan)
        snap_p = reg_p.snapshot()

        key = 'repro_io_read_bytes{disk="disk1"}'
        assert snap_p[key] == snap_t[key] > 0
        # Latency histogram is populated either way.
        counts = [v for k, v in snap_p.items()
                  if k.startswith("repro_service_job_seconds_count")]
        assert counts == [2]
        q = reg_p.quantiles()
        assert any(k.startswith("repro_service_job_seconds") for k in q)

    def test_procs_without_registry_merge_into_disk_stats(self, prog,
                                                          best_plan,
                                                          tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=4 * CAP, workers=1,
                          backend="procs") as svc:
            r = svc.submit(prog, P, _inputs(prog, 0),
                           plan=best_plan).result(timeout=180)
            # Worker traffic folded into the service disk's stats.
            assert svc.disk.stats.read_bytes >= r.report.io.read_bytes
            assert svc.disk.stats.write_bytes > 0


class TestProcsResilience:
    def test_faults_with_job_retry(self, prog, best_plan, tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=4 * CAP, workers=1,
                          backend="procs", faults=13,
                          job_retry=3) as svc:
            r = svc.submit(prog, P, _inputs(prog, 6),
                           plan=best_plan).result(timeout=180)
        expected = reference_outputs(prog, P, _inputs(prog, 6))
        assert r.outputs
        for name in r.outputs:
            assert np.allclose(r.outputs[name], expected[name])

    def test_deadline_enforced_inside_worker(self, prog, best_plan,
                                             tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=4 * CAP, workers=1,
                          backend="procs", io_pace=200.0,
                          job_timeout=0.2) as svc:
            fut = svc.submit(prog, P, _inputs(prog, 7), plan=best_plan)
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=180)


class TestShardedServiceDisk:
    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_results_unchanged_on_sharded_disk(self, prog, best_plan,
                                               tmp_path, backend):
        with ArrayService(tmp_path / "s1", memory_cap_bytes=4 * CAP,
                          workers=2, backend=backend) as svc:
            base = _run(svc, prog, (8, 9), best_plan)
        with ArrayService(tmp_path / "s4", memory_cap_bytes=4 * CAP,
                          workers=2, backend=backend, shards=4) as svc:
            sharded = _run(svc, prog, (8, 9), best_plan)
        for b, s in zip(base, sharded):
            for name in b.outputs:
                assert np.array_equal(s.outputs[name], b.outputs[name])
            assert s.report.io.read_bytes == b.report.io.read_bytes

    def test_job_seconds_histogram_observes_completions(self, prog,
                                                        best_plan,
                                                        tmp_path):
        with ArrayService(tmp_path, memory_cap_bytes=4 * CAP,
                          workers=2, shards=2) as svc:
            _run(svc, prog, (0, 1, 2), best_plan)
            assert svc.stats.job_seconds.count == 3
            assert svc.stats.job_seconds.quantile(0.5) is not None
