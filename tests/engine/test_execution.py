"""Integration tests: engine executes every optimizer plan correctly, with
byte-exact agreement between predicted and measured I/O and memory."""

import numpy as np
import pytest

from repro.codegen import IOAction, build_executable_plan
from repro.engine import reference_outputs, run_program
from repro.exceptions import BufferPoolError, ExecutionError
from repro.optimizer import optimize
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 2}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


@pytest.fixture(scope="module")
def inputs(prog):
    rng = np.random.default_rng(7)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


@pytest.fixture(scope="module")
def truth(inputs):
    return (inputs["A"] + inputs["B"]) @ inputs["D"]


class TestReference:
    def test_reference_matches_dense_formula(self, prog, inputs, truth):
        ref = reference_outputs(prog, P, inputs)
        assert np.allclose(ref["E"], truth)
        assert np.allclose(ref["C"], inputs["A"] + inputs["B"])

    def test_reference_missing_input_raises(self, prog):
        with pytest.raises(ExecutionError):
            reference_outputs(prog, P, {})


class TestAllPlansExecute:
    def test_every_plan_correct_and_io_exact(self, prog, result, inputs, truth,
                                             tmp_path_factory):
        for plan in result.plans:
            td = tmp_path_factory.mktemp(f"plan{plan.index}")
            report, outputs = run_program(prog, P, plan, td, inputs)
            assert np.allclose(outputs["E"], truth), f"plan {plan.index} wrong"
            assert report.io.read_bytes == plan.cost.read_bytes
            assert report.io.write_bytes == plan.cost.write_bytes
            assert report.peak_memory_bytes == plan.cost.memory_bytes

    def test_best_plan_saves_io(self, result):
        assert result.best().cost.total_bytes < result.original_plan.cost.total_bytes


class TestMemoryCap:
    def test_exact_cap_suffices(self, prog, result, inputs, tmp_path):
        best = result.best()
        report, _ = run_program(prog, P, best, tmp_path, inputs,
                                memory_cap_bytes=best.cost.memory_bytes)
        assert report.peak_memory_bytes <= best.cost.memory_bytes

    def test_too_small_cap_fails(self, prog, result, inputs, tmp_path):
        best = result.best()
        with pytest.raises(BufferPoolError):
            run_program(prog, P, best, tmp_path, inputs,
                        memory_cap_bytes=best.cost.memory_bytes - 1)


class TestStoreFormats:
    def test_labtree_backend(self, prog, result, inputs, truth, tmp_path):
        best = result.best()
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      store_format="labtree")
        assert np.allclose(outputs["E"], truth)
        assert report.io.read_bytes == best.cost.read_bytes

    def test_unknown_format_rejected(self, prog, result, inputs, tmp_path):
        with pytest.raises(ExecutionError):
            run_program(prog, P, result.best(), tmp_path, inputs,
                        store_format="csv")

    def test_missing_input_rejected(self, prog, result, tmp_path):
        with pytest.raises(ExecutionError):
            run_program(prog, P, result.best(), tmp_path, {})


class TestExecutablePlanStructure:
    def test_io_summary_consistent_with_cost(self, prog, result):
        for plan in result.plans:
            ep = build_executable_plan(prog, P, plan)
            counts = ep.io_summary()
            ab = prog.arrays["A"].block_bytes
            # Reads: every READ is one block I/O; block sizes differ per
            # array so compare via bytes recomputed from the planned accesses.
            read_bytes = sum(pa.access.array.block_bytes
                             for inst in ep.instances for pa in inst.reads
                             if pa.action is IOAction.READ)
            write_bytes = sum(inst.write.access.array.block_bytes
                              for inst in ep.instances
                              if inst.write and inst.write.action is IOAction.WRITE)
            assert read_bytes == plan.cost.read_bytes
            assert write_bytes == plan.cost.write_bytes

    def test_pins_are_balanced(self, prog, result):
        for plan in result.plans:
            ep = build_executable_plan(prog, P, plan)
            opened = sum(pa.pin_after for inst in ep.instances
                         for pa in inst.reads + ([inst.write] if inst.write else []))
            closed = sum(pa.unpin_before for inst in ep.instances
                         for pa in inst.reads + ([inst.write] if inst.write else []))
            assert opened == closed

    def test_plan_instances_cover_all_domain_points(self, prog, result):
        ep = build_executable_plan(prog, P, result.best())
        per_stmt = {}
        for inst in ep.instances:
            per_stmt.setdefault(inst.stmt.name, set()).add(inst.point)
        for stmt in prog.statements:
            assert per_stmt[stmt.name] == set(stmt.instances(P))
