"""Unit tests for the block kernels."""

import numpy as np
import pytest

from repro.engine import run_kernel
from repro.exceptions import ExecutionError


def test_add():
    a, b = np.ones((2, 2)), np.full((2, 2), 2.0)
    assert np.array_equal(run_kernel("add", [a, b], (2, 2)), np.full((2, 2), 3.0))


def test_sub():
    a, b = np.ones((2, 2)), np.full((2, 2), 2.0)
    assert np.array_equal(run_kernel("sub", [a, b], (2, 2)), np.full((2, 2), -1.0))


def test_copy():
    a = np.arange(4.0).reshape(2, 2)
    out = run_kernel("copy", [a], (2, 2))
    assert np.array_equal(out, a)
    assert out is not a


def test_gemm_nn_without_accumulator_starts_at_zero():
    a = np.eye(3)
    b = np.arange(9.0).reshape(3, 3)
    assert np.array_equal(run_kernel("gemm_nn", [a, b], (3, 3)), b)


def test_gemm_nn_accumulates():
    a = np.eye(2)
    b = np.ones((2, 2))
    acc = np.full((2, 2), 5.0)
    assert np.array_equal(run_kernel("gemm_nn", [a, b, acc], (2, 2)),
                          np.full((2, 2), 6.0))


def test_matmul_acc_alias():
    a, b = np.eye(2), np.ones((2, 2))
    assert np.array_equal(run_kernel("matmul_acc", [a, b], (2, 2)),
                          run_kernel("gemm_nn", [a, b], (2, 2)))


def test_gemm_tn():
    a = np.array([[1.0, 2.0], [3.0, 4.0]])
    b = np.eye(2)
    assert np.array_equal(run_kernel("gemm_tn", [a, b], (2, 2)), a.T)


def test_gemm_nt():
    a = np.array([[1.0, 2.0], [3.0, 4.0]])
    b = np.eye(2)
    assert np.array_equal(run_kernel("gemm_nt", [a, b], (2, 2)), a)


def test_syrk_tn():
    x = np.array([[1.0, 2.0], [3.0, 4.0]])
    assert np.allclose(run_kernel("syrk_tn", [x], (2, 2)), x.T @ x)


def test_inverse():
    m = np.array([[2.0, 0.0], [0.0, 4.0]])
    assert np.allclose(run_kernel("inverse", [m], (2, 2)),
                       np.diag([0.5, 0.25]))


def test_colsumsq_acc():
    e = np.array([[1.0, 2.0], [3.0, 4.0]])
    out = run_kernel("colsumsq_acc", [e], (1, 2))
    assert np.allclose(out, [[10.0, 20.0]])
    out2 = run_kernel("colsumsq_acc", [e, out], (1, 2))
    assert np.allclose(out2, [[20.0, 40.0]])


def test_scale():
    a = np.ones((2, 2))
    s = np.array([[3.0]])
    assert np.array_equal(run_kernel("scale", [a, s], (2, 2)), np.full((2, 2), 3.0))


def test_unknown_kernel_raises():
    with pytest.raises(ExecutionError):
        run_kernel("nope", [], (1, 1))


def test_wrong_arity_raises():
    with pytest.raises(ExecutionError):
        run_kernel("add", [np.ones((2, 2))], (2, 2))


def test_wrong_shape_raises():
    with pytest.raises(ExecutionError):
        run_kernel("copy", [np.ones((2, 3))], (2, 2))


def test_bad_accumulator_arity():
    with pytest.raises(ExecutionError):
        run_kernel("gemm_nn", [np.eye(2)], (2, 2))
