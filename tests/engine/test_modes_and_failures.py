"""Engine policy modes and failure injection."""

import numpy as np
import pytest

from repro.codegen import build_executable_plan
from repro.engine import execute_plan, run_program
from repro.exceptions import ExecutionError, StorageError
from repro.optimizer import IOModel, optimize
from repro.storage import DAFMatrix, SimulatedDisk
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


@pytest.fixture(scope="module")
def inputs(prog):
    rng = np.random.default_rng(4)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


class TestOpportunisticMode:
    def test_lru_mode_never_exceeds_predicted_io(self, prog, result, inputs,
                                                 tmp_path_factory):
        """With classic LRU residency (plan_exact=False), incidental buffer
        hits can only reduce I/O below the plan-exact prediction."""
        for plan in (result.original_plan, result.best()):
            td = tmp_path_factory.mktemp(f"op{plan.index}")
            report, outputs = run_program(prog, P, plan, td, inputs,
                                          plan_exact=False)
            assert report.io.read_bytes <= plan.cost.read_bytes
            assert report.io.write_bytes <= plan.cost.write_bytes
            truth = (inputs["A"] + inputs["B"]) @ inputs["D"]
            assert np.allclose(outputs["E"], truth)

    def test_opportunistic_beats_plan0_exact(self, prog, result, inputs,
                                             tmp_path):
        """LRU with unlimited memory turns repeated reads into hits."""
        report, _ = run_program(prog, P, result.original_plan, tmp_path,
                                inputs, plan_exact=False)
        assert report.pool_hits > 0

    def _tight_cap_setup(self, prog, result, inputs, tmp_path,
                         write_through: bool):
        """Best plan with retention pins stripped (classic LRU is free to
        evict plan-retained blocks), optionally upgrading WRITE_SKIP to
        write-through so evicted blocks keep a valid disk copy."""
        from repro.codegen import IOAction
        ep = build_executable_plan(prog, P, result.best())
        has_reuse = False
        for inst in ep.instances:
            for pa in inst.reads + ([inst.write] if inst.write else []):
                pa.pin_after = 0
                pa.unpin_before = 0
                if pa.action is IOAction.REUSE:
                    has_reuse = True
                if write_through and pa.action is IOAction.WRITE_SKIP:
                    pa.action = IOAction.WRITE
        if not has_reuse:
            pytest.skip("best plan has no REUSE")
        disk = SimulatedDisk(tmp_path)
        stores = {}
        for name, arr in prog.arrays.items():
            store = DAFMatrix.create(disk, name, arr.num_blocks(P),
                                     arr.block_shape)
            stores[name] = store
            if name in inputs:
                store.write_matrix(inputs[name], count=False)
            else:
                store.write_matrix(np.zeros(arr.shape_elems(P)), count=False)
        cap = 4 * max(a.block_bytes for a in prog.arrays.values())
        return ep, stores, disk, cap

    def test_evicted_reuse_falls_back_to_read(self, prog, result, inputs,
                                              tmp_path):
        """Regression: under a tight cap, opportunistic LRU legally evicts
        blocks the plan retained for REUSE; the engine must re-read them
        from disk (counted) instead of raising ExecutionError — and still
        compute the right answer."""
        ep, stores, disk, cap = self._tight_cap_setup(
            prog, result, inputs, tmp_path, write_through=True)
        with disk:
            report = execute_plan(ep, stores, disk, memory_cap_bytes=cap,
                                  plan_exact=False)
            outputs = stores["E"].read_matrix(count=False)
        truth = (inputs["A"] + inputs["B"]) @ inputs["D"]
        assert np.allclose(outputs, truth)
        # The fallback reads are charged as disk I/O, not smuggled in free.
        assert report.io.read_bytes > 0

    def test_evicted_memory_only_reuse_still_fails(self, prog, result,
                                                   inputs, tmp_path):
        """If the evicted block's newest version was WRITE_SKIP (memory
        only), no disk copy exists — falling back to a read would silently
        return stale data, so that case must still be an error."""
        ep, stores, disk, cap = self._tight_cap_setup(
            prog, result, inputs, tmp_path, write_through=False)
        from repro.codegen import IOAction
        if not any(inst.write and inst.write.action is IOAction.WRITE_SKIP
                   for inst in ep.instances):
            pytest.skip("best plan has no WRITE_SKIP")
        with disk:
            with pytest.raises(ExecutionError, match="never written to disk"):
                execute_plan(ep, stores, disk, memory_cap_bytes=cap,
                             plan_exact=False)


class TestMemoryOnlyBookkeeping:
    """The engine's stale-disk tracking in opportunistic mode.

    ``memory_only`` marks blocks whose newest version exists only in memory
    (WRITE_SKIP).  A later WRITE of the same block refreshes the disk copy
    and must clear the flag — otherwise a legal LRU eviction followed by a
    REUSE would be rejected even though the disk copy is current.
    """

    BS = (4, 4)

    def _instances(self, include_write_back: bool):
        from types import SimpleNamespace

        from repro.codegen import IOAction
        from repro.codegen.exec_plan import PlannedAccess, PlannedInstance

        arrays = {n: SimpleNamespace(name=n, block_shape=self.BS)
                  for n in ("A", "C", "E")}

        def acc(name, action):
            return PlannedAccess(SimpleNamespace(array=arrays[name]), (0, 0),
                                 action)

        def inst(i, reads, write):
            stmt = SimpleNamespace(name=f"s{i}", kernel="copy",
                                   kernel_args=None)
            return PlannedInstance(stmt, (i,), reads, write)

        instances = [
            # C is produced memory-only first ...
            inst(0, [acc("A", IOAction.READ)], acc("C", IOAction.WRITE_SKIP)),
        ]
        if include_write_back:
            # ... then written through, which must clear the stale-disk flag.
            instances.append(
                inst(1, [acc("A", IOAction.READ)], acc("C", IOAction.WRITE)))
        instances += [
            # Touching A and E under a 2-block cap evicts unpinned C.
            inst(2, [acc("A", IOAction.READ)], acc("E", IOAction.WRITE)),
            # REUSE of the evicted C: legal iff its disk copy is current.
            inst(3, [acc("C", IOAction.REUSE)], acc("E", IOAction.WRITE)),
        ]
        return SimpleNamespace(instances=instances)

    def _setup(self, tmp_path):
        rng = np.random.default_rng(9)
        data = rng.standard_normal(self.BS)
        disk = SimulatedDisk(tmp_path)
        stores = {n: DAFMatrix.create(disk, n, (1, 1), self.BS)
                  for n in ("A", "C", "E")}
        stores["A"].write_block((0, 0), data, count=False)
        cap = 2 * stores["A"].layout.block_bytes
        return disk, stores, cap, data

    def test_write_after_skip_clears_stale_flag(self, tmp_path):
        """WRITE_SKIP -> WRITE -> eviction -> REUSE succeeds from disk."""
        disk, stores, cap, data = self._setup(tmp_path)
        plan = self._instances(include_write_back=True)
        with disk:
            report = execute_plan(plan, stores, disk, memory_cap_bytes=cap,
                                  plan_exact=False)
            out = stores["E"].read_block((0, 0), count=False)
        assert np.array_equal(out, data)
        # Counted reads: the initial A miss and the REUSE fallback read of C
        # (later A touches are buffer hits); all three writes hit disk.
        assert report.io.read_ops == 2
        assert report.io.write_ops == 3

    def test_skip_without_write_back_still_fails(self, tmp_path):
        """Without the WRITE, the evicted block's newest version was never
        on disk — the REUSE must fail loudly, not read stale bytes."""
        disk, stores, cap, _ = self._setup(tmp_path)
        plan = self._instances(include_write_back=False)
        with disk:
            with pytest.raises(ExecutionError, match="never written to disk"):
                execute_plan(plan, stores, disk, memory_cap_bytes=cap,
                             plan_exact=False)


class TestFailureInjection:
    def test_truncated_store_detected(self, prog, result, inputs, tmp_path):
        """A short file surfaces as a StorageError, not silent corruption."""
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            m.file.truncate(64 + 2 * m.layout.block_bytes)  # half the blocks
            m.read_block((0, 0))  # still intact
            with pytest.raises(StorageError, match="short read"):
                m.read_block((1, 1))

    def test_reuse_without_residency_is_a_plan_bug(self, prog, result,
                                                   inputs, tmp_path):
        """Stripping pins from an executable plan must be caught at the
        first REUSE, proving the engine trusts nothing."""
        best = result.best()
        ep = build_executable_plan(prog, P, best)
        has_reuse = False
        for inst in ep.instances:
            for pa in inst.reads + ([inst.write] if inst.write else []):
                pa.pin_after = 0
                pa.unpin_before = 0
                from repro.codegen import IOAction
                if pa.action is IOAction.REUSE:
                    has_reuse = True
        if not has_reuse:
            pytest.skip("best plan has no REUSE")
        with SimulatedDisk(tmp_path) as disk:
            stores = {}
            for name, arr in prog.arrays.items():
                store = DAFMatrix.create(disk, name, arr.num_blocks(P),
                                         arr.block_shape)
                stores[name] = store
                if name in inputs:
                    store.write_matrix(inputs[name], count=False)
                else:
                    store.write_matrix(np.zeros(arr.shape_elems(P)), count=False)
            with pytest.raises(ExecutionError, match="REUSE of non-resident"):
                execute_plan(ep, stores, disk)

    def test_zero_byte_cap_rejected(self, prog, result, inputs, tmp_path):
        from repro.exceptions import BufferPoolError
        with pytest.raises(BufferPoolError):
            run_program(prog, P, result.best(), tmp_path, inputs,
                        memory_cap_bytes=0)


class TestTraceNesting:
    def test_spans_well_nested_after_mid_instance_failure(self, prog, result,
                                                          inputs, tmp_path):
        """A kernel blowing up mid-instance must not leak its open
        ``exec.instance`` span: every begin is matched by an end on its
        thread, so the Chrome export stays well-formed (regression for the
        unclosed-span bug)."""
        import repro.engine.executor as executor
        from repro.obs import trace as obs_trace

        real = executor.run_kernel
        calls = {"n": 0}

        def flaky(name, reads, out_shape, args):
            calls["n"] += 1
            if calls["n"] == 3:
                raise ExecutionError("injected kernel failure (boom)")
            return real(name, reads, out_shape, args)

        tracer = obs_trace.Tracer()
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(executor, "run_kernel", flaky)
            with pytest.raises(ExecutionError, match="boom"):
                run_program(prog, P, result.best(), tmp_path, inputs,
                            tracer=tracer)

        stacks = {}
        for ev in tracer.events:
            if ev.ph == "B":
                stacks.setdefault(ev.tid, []).append(ev.name)
            elif ev.ph == "E":
                assert stacks.get(ev.tid), \
                    f"end without begin on tid {ev.tid}"
                stacks[ev.tid].pop()
        leaked = {tid: s for tid, s in stacks.items() if s}
        assert not leaked, f"unclosed spans: {leaked}"
        # The instance that failed was begun — and therefore ended.
        assert any(ev.name == "exec.instance" and ev.ph == "B"
                   for ev in tracer.events)
        # And the export is valid JSON with balanced phases.
        obs_trace.chrome_trace(tracer.events)
