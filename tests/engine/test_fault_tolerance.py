"""End-to-end fault tolerance: the fig4 two-matmuls workload under injected
faults, checkpointed execution, and crash/resume.

Acceptance criteria from the durability work: a run under a >=5% transient
fault policy completes bit-identical to the fault-free run with the retries
reported in ``IOStats``; a run killed mid-plan resumes via ``resume=True``
and produces identical outputs without re-executing completed instances.

Seeds come from ``REPRO_FAULT_SEEDS`` (fast CI: three seeds; nightly: 25).
"""

import os

import numpy as np
import pytest

from repro.codegen import build_executable_plan
from repro.engine import run_program
from repro.exceptions import ExecutionError, StorageError
from repro.optimizer import optimize
from repro.storage import FaultInjector, FaultPolicy, RetryPolicy
from tests.fixtures import two_matmul_program

P = {"n1": 2, "n2": 2, "n3": 2, "n4": 2}


def _seeds():
    env = os.environ.get("REPRO_FAULT_SEEDS")
    if not env:
        return [0, 1, 2]
    return [int(s) for s in env.replace(",", " ").split()]


@pytest.fixture(scope="module")
def prog():
    return two_matmul_program(blk=8)


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


@pytest.fixture(scope="module")
def best(result):
    return result.best()


@pytest.fixture(scope="module")
def inputs(prog):
    rng = np.random.default_rng(11)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


@pytest.fixture(scope="module")
def clean(prog, best, inputs, tmp_path_factory):
    """Fault-free baseline run of the best plan."""
    td = tmp_path_factory.mktemp("clean")
    return run_program(prog, P, best, td, inputs)


@pytest.fixture(scope="module")
def total_instances(prog, best):
    return len(build_executable_plan(prog, P, best).instances)


def _no_backoff(max_retries=6):
    return RetryPolicy(max_retries, backoff_base=0)


class TestFaultyRunsBitIdentical:
    @pytest.mark.parametrize("seed", _seeds())
    def test_transient_faults_absorbed_bit_exact(self, prog, best, inputs,
                                                 clean, tmp_path, seed):
        """>=5% transient faults on every counted op: same bits out, same
        counted bytes, every injected fault visible as a retry."""
        clean_report, clean_out = clean
        inj = FaultInjector(seed, [FaultPolicy(transient=0.1)])
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      faults=inj, retry=_no_backoff())
        for name in clean_out:
            assert np.array_equal(outputs[name], clean_out[name]), name
        assert all(f.kind == "transient" for f in inj.trace)
        assert report.io.retries == len(inj.trace)
        # Failed attempts transfer nothing, so counted I/O stays byte-exact.
        assert report.io.read_bytes == clean_report.io.read_bytes
        assert report.io.write_bytes == clean_report.io.write_bytes

    def test_high_rate_actually_exercises_retries(self, prog, best, inputs,
                                                  tmp_path):
        inj = FaultInjector(0, [FaultPolicy(transient=0.3)])
        report, _ = run_program(prog, P, best, tmp_path, inputs,
                                faults=inj, retry=_no_backoff(10))
        assert report.io.retries > 0
        assert inj.counts()["transient"] == report.io.retries

    def test_seed_as_faults_shorthand(self, prog, best, inputs, clean,
                                      tmp_path):
        """``faults=<int>`` means the default 5%-transient policy."""
        _, clean_out = clean
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      faults=7, retry=_no_backoff())
        for name in clean_out:
            assert np.array_equal(outputs[name], clean_out[name]), name


class TestCheckpointResume:
    def _kill_mid_plan(self, prog, best, inputs, workdir, after=3):
        """Run until the (after+1)-th counted write, which always fails."""
        inj = FaultInjector(0, [FaultPolicy(op="write", transient=1.0,
                                            after=after)])
        with pytest.raises(StorageError, match="failed after"):
            run_program(prog, P, best, workdir, inputs, faults=inj,
                        retry=RetryPolicy(0, backoff_base=0),
                        checkpoint=True)

    def test_killed_mid_plan_resumes_identically(self, prog, best, inputs,
                                                 clean, total_instances,
                                                 tmp_path):
        _, clean_out = clean
        self._kill_mid_plan(prog, best, inputs, tmp_path)
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      checkpoint=True, resume=True)
        # Completed instances were not re-executed ...
        assert report.resumed_from >= 1
        assert report.instances < total_instances
        assert report.instances + report.resumed_from == total_instances
        # ... and the outputs are bit-identical to the uninterrupted run.
        for name in clean_out:
            assert np.array_equal(outputs[name], clean_out[name]), name

    def test_resume_of_completed_run_executes_nothing(self, prog, best,
                                                      inputs, clean,
                                                      total_instances,
                                                      tmp_path):
        _, clean_out = clean
        run_program(prog, P, best, tmp_path, inputs, checkpoint=True)
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      checkpoint=True, resume=True)
        assert report.resumed_from == total_instances
        assert report.instances == 0
        for name in clean_out:
            assert np.array_equal(outputs[name], clean_out[name]), name

    def test_resume_with_different_plan_rejected(self, prog, result, best,
                                                 inputs, tmp_path):
        """The journal is bound to one plan by fingerprint."""
        self._kill_mid_plan(prog, best, inputs, tmp_path)
        with pytest.raises(ExecutionError, match="fingerprint"):
            run_program(prog, P, result.original_plan, tmp_path, inputs,
                        checkpoint=True, resume=True)

    def test_resume_without_journal_is_a_fresh_run(self, prog, best, inputs,
                                                   clean, tmp_path):
        _, clean_out = clean
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      resume=True)
        assert report.resumed_from == 0
        for name in clean_out:
            assert np.array_equal(outputs[name], clean_out[name]), name


class TestKernelFailureCleanup:
    def test_mid_plan_kernel_error_leaves_clean_disk(self, prog, best, inputs,
                                                     clean, tmp_path):
        """A kernel blowing up mid-plan must not leak staging temps or undo
        records, and the checkpoint must allow a clean resume once the
        kernel is fixed."""
        import repro.engine.executor as executor
        _, clean_out = clean
        real = executor.run_kernel
        calls = {"n": 0}

        def flaky(name, reads, out_shape, args):
            calls["n"] += 1
            if calls["n"] == 6:
                raise ExecutionError("injected kernel failure (boom)")
            return real(name, reads, out_shape, args)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(executor, "run_kernel", flaky)
            with pytest.raises(ExecutionError, match="boom"):
                run_program(prog, P, best, tmp_path, inputs, checkpoint=True)
        # No leaked temp files or undo records: the stores were closed and
        # every completed write committed cleanly.
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".*.undo")) == []
        assert list(tmp_path.glob(".*.undo.tmp")) == []
        # Kernel fixed: resume completes from the checkpoint.
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      checkpoint=True, resume=True)
        assert report.resumed_from >= 1
        for name in clean_out:
            assert np.array_equal(outputs[name], clean_out[name]), name
