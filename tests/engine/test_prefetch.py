"""Prefetch pipeline tests: byte-exact overlap at every depth, budget
back-pressure, failure attribution, checkpoint/resume composition, and the
batched contiguous-run read path (pipeline unit level)."""

import time

import numpy as np
import pytest

from repro.codegen import build_executable_plan
from repro.codegen.exec_plan import PrefetchItem
from repro.engine import PrefetchPipeline, execute_plan, run_program
from repro.exceptions import (BufferPoolError, CorruptBlockError,
                              ExecutionError, StorageError)
from repro.ir import ArrayKind
from repro.optimizer import IOModel, optimize
from repro.storage import (BufferPool, DAFMatrix, FaultInjector, FaultPolicy,
                           LockedPool, RetryPolicy, SimulatedDisk)
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 2}
DEPTHS = [0, 1, 2, 8]


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


@pytest.fixture(scope="module")
def best(result):
    return result.best()


@pytest.fixture(scope="module")
def inputs(prog):
    rng = np.random.default_rng(7)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


@pytest.fixture(scope="module")
def truth(inputs):
    return (inputs["A"] + inputs["B"]) @ inputs["D"]


def _read_items(prog, plan):
    return build_executable_plan(prog, P, plan).read_sequence()


class TestByteExactEveryDepth:
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_all_plans_correct_and_io_exact(self, prog, result, inputs, truth,
                                            tmp_path_factory, depth):
        """Overlap must never change *what* I/O happens — only when.  Every
        plan at every depth stays byte-exact against the cost model, with
        validate=True auditing the traced actuals."""
        for plan in result.plans:
            td = tmp_path_factory.mktemp(f"d{depth}p{plan.index}")
            report, outputs = run_program(prog, P, plan, td, inputs,
                                          prefetch_depth=depth, validate=True)
            assert np.allclose(outputs["E"], truth), \
                f"plan {plan.index} wrong at depth {depth}"
            assert report.io.read_bytes == plan.cost.read_bytes
            assert report.io.write_bytes == plan.cost.write_bytes
            assert report.validation.passed, report.validation.summary()
            if depth == 0:
                assert report.prefetch is None
            else:
                st = report.prefetch
                assert st is not None
                total = len(_read_items(prog, plan))
                assert st.staged_blocks + st.taken_by_main == total
                assert st.consumed_staged == st.staged_blocks - st.discarded
                assert st.failed == 0

    def test_deep_prefetch_stages_most_reads(self, prog, best, inputs,
                                             tmp_path):
        report, _ = run_program(prog, P, best, tmp_path, inputs,
                                prefetch_depth=8)
        st = report.prefetch
        # With no cap and depth 8 the readers should win most of the races.
        assert st.staged_blocks > 0
        assert st.consumed_staged > 0


class TestBudget:
    def test_zero_budget_degrades_to_serial(self, prog, best, inputs, truth,
                                            tmp_path):
        """A budget of 0 stages nothing: every read falls to the main
        thread, and the run is still correct and byte-exact."""
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      prefetch_depth=4,
                                      prefetch_budget_bytes=0)
        assert np.allclose(outputs["E"], truth)
        assert report.io.read_bytes == best.cost.read_bytes
        st = report.prefetch
        assert st.staged_blocks == 0
        assert st.taken_by_main == len(_read_items(prog, best))

    def test_exact_cap_leaves_no_headroom(self, prog, best, inputs, truth,
                                          tmp_path):
        """memory_cap == plan residency ⇒ the default budget carve-out is 0,
        so prefetch silently degrades instead of busting the cap."""
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      memory_cap_bytes=best.cost.memory_bytes,
                                      prefetch_depth=4)
        assert np.allclose(outputs["E"], truth)
        assert report.prefetch.staged_blocks == 0
        assert report.peak_memory_bytes <= best.cost.memory_bytes

    def test_headroom_bounds_staged_bytes(self, prog, best, inputs, truth,
                                          tmp_path):
        """Two blocks of headroom: staged-but-unconsumed bytes never exceed
        it, and the pool never exceeds the cap."""
        bb = prog.arrays["A"].block_bytes
        cap = best.cost.memory_bytes + 2 * bb
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      memory_cap_bytes=cap, prefetch_depth=8)
        assert np.allclose(outputs["E"], truth)
        assert report.prefetch.max_staged_bytes <= 2 * bb
        assert report.peak_memory_bytes <= cap


class TestOpportunisticMode:
    def test_prefetch_composes_with_lru_mode(self, prog, best, inputs, truth,
                                             tmp_path):
        """plan_exact=False + prefetch: staged reads are plan-exact, so
        actual I/O can only meet the prediction, never exceed it."""
        report, outputs = run_program(prog, P, best, tmp_path, inputs,
                                      plan_exact=False, prefetch_depth=4)
        assert np.allclose(outputs["E"], truth)
        assert report.io.read_bytes <= best.cost.read_bytes


def _corrupt_block(store, coords):
    """Flip one data byte of a DAF block *under* its recorded checksum,
    through the store's own disk handle (uncounted metadata write)."""
    from repro.storage.daf import _HEADER_BYTES
    base = _HEADER_BYTES + store.layout.offset_of(coords)
    raw = store.file.read_at(base, 1, count=False)
    store.file.write_at(base, bytes([raw[0] ^ 0xFF]), count=False)


def _create_stores(disk, prog, inputs):
    stores = {}
    for name, arr in prog.arrays.items():
        store = DAFMatrix.create(disk, name, arr.num_blocks(P),
                                 arr.block_shape)
        stores[name] = store
        if arr.kind is ArrayKind.INPUT:
            store.write_matrix(inputs[name], count=False)
        else:
            store.preallocate()
    return stores


class TestFailureAttribution:
    @pytest.mark.parametrize("depth", [0, 4])
    def test_corrupt_block_surfaces_identically(self, prog, best, inputs,
                                                tmp_path_factory, depth):
        """A block whose on-disk bytes were silently flipped fails its
        checksum on the consuming access — whether the main thread or a
        reader thread performed the read."""
        td = tmp_path_factory.mktemp(f"corrupt{depth}")
        ep = build_executable_plan(prog, P, best)
        with SimulatedDisk(td, IOModel()) as disk:
            stores = _create_stores(disk, prog, inputs)
            # Flip a data byte in A's last block: its checksum now fails
            # persistently, beyond any re-read retry.
            grid = prog.arrays["A"].num_blocks(P)
            _corrupt_block(stores["A"], (grid[0] - 1, grid[1] - 1))
            try:
                with pytest.raises(CorruptBlockError):
                    execute_plan(ep, stores, disk, prefetch_depth=depth)
            finally:
                for s in stores.values():
                    try:
                        s.close()
                    except StorageError:
                        pass


class TestResumeComposition:
    def _kill_mid_plan(self, prog, best, inputs, workdir, depth):
        inj = FaultInjector(0, [FaultPolicy(op="write", transient=1.0,
                                            after=3)])
        with pytest.raises(StorageError, match="failed after"):
            run_program(prog, P, best, workdir, inputs, faults=inj,
                        retry=RetryPolicy(0, backoff_base=0),
                        checkpoint=True, prefetch_depth=depth)

    def test_interrupted_prefetch_run_resumes_like_serial(
            self, prog, best, inputs, truth, tmp_path_factory):
        """Kill a checkpointed run at the 4th counted write, once serially
        and once at depth 4; resume both.  Staged-but-unconsumed blocks are
        discarded at the kill, so the two resumes replay the exact same
        instance suffix with the exact same counted I/O."""
        serial_dir = tmp_path_factory.mktemp("resume_serial")
        pre_dir = tmp_path_factory.mktemp("resume_prefetch")
        self._kill_mid_plan(prog, best, inputs, serial_dir, depth=0)
        self._kill_mid_plan(prog, best, inputs, pre_dir, depth=4)

        rs, out_s = run_program(prog, P, best, serial_dir, inputs,
                                checkpoint=True, resume=True)
        rp, out_p = run_program(prog, P, best, pre_dir, inputs,
                                checkpoint=True, resume=True,
                                prefetch_depth=4)
        assert rs.resumed_from >= 1
        assert rp.resumed_from == rs.resumed_from
        assert rp.instances == rs.instances
        assert rp.io.read_bytes == rs.io.read_bytes
        assert rp.io.write_bytes == rs.io.write_bytes
        assert rp.prefetch is not None
        for out in (out_s, out_p):
            assert np.allclose(out["E"], truth)
        assert np.array_equal(out_p["E"], out_s["E"])


# -- pipeline unit level ------------------------------------------------------

class _Obj:
    """Attribute bag standing in for PlannedAccess/BlockAccess/Array."""

    def __init__(self, **kw):
        self.__dict__.update(kw)


def _stub_items(name, block_bytes, coords_list, barriers=None):
    items = []
    for i, coords in enumerate(coords_list):
        arr = _Obj(name=name, block_bytes=block_bytes)
        acc = _Obj(array=arr, statement=_Obj(name="s1"))
        pa = _Obj(access=acc, block=tuple(coords),
                  block_key=(name, tuple(coords)))
        barrier = barriers[i] if barriers is not None else -1
        items.append(PrefetchItem(i, i, pa, barrier, i))
    return items


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.005)
    return True


@pytest.fixture()
def daf4(tmp_path):
    """A 4-block column of 4x4 blocks with known contents, plus its disk."""
    with SimulatedDisk(tmp_path, IOModel()) as disk:
        store = DAFMatrix.create(disk, "A", (4, 1), (4, 4))
        store.write_matrix(np.arange(64.0).reshape(16, 4), count=False)
        yield disk, store
        store.close()


class TestPipelineUnit:
    def test_contiguous_run_reads_as_one_op(self, daf4):
        disk, store = daf4
        bb = store.layout.block_bytes
        pool = LockedPool(BufferPool())
        items = _stub_items("A", bb, [(i, 0) for i in range(4)])
        pipe = PrefetchPipeline(items, {"A": store}, pool, depth=8)
        try:
            assert _wait_for(lambda: pipe.stats.staged_blocks == 4)
            assert disk.stats.read_ops == 1
            assert disk.stats.read_bytes == 4 * bb
            for it in items:
                blk = pipe.consume(it.block_key)
                assert blk is not None
                expect = store.read_block(it.access.block, count=False)
                np.testing.assert_array_equal(blk.data, expect)
        finally:
            pipe.close()
        assert pipe.stats.batched_runs == 1
        assert pipe.stats.batched_blocks == 4
        assert pipe.stats.consumed_staged == 4

    def test_depth_one_reads_block_at_a_time(self, daf4):
        disk, store = daf4
        bb = store.layout.block_bytes
        pool = LockedPool(BufferPool())
        items = _stub_items("A", bb, [(i, 0) for i in range(4)])
        pipe = PrefetchPipeline(items, {"A": store}, pool, depth=1)
        try:
            for it in items:
                assert _wait_for(lambda: pipe.stats.staged_blocks
                                 > pipe.stats.consumed_staged)
                assert pipe.consume(it.block_key) is not None
        finally:
            pipe.close()
        assert pipe.stats.batched_runs == 0
        assert pipe.stats.consumed_staged == 4
        assert disk.stats.read_ops == 4

    def test_budget_bounds_inflight_bytes(self, daf4):
        disk, store = daf4
        bb = store.layout.block_bytes
        pool = LockedPool(BufferPool())
        items = _stub_items("A", bb, [(i, 0) for i in range(4)])
        pipe = PrefetchPipeline(items, {"A": store}, pool, depth=8,
                                budget_bytes=2 * bb)
        try:
            for it in items:
                assert _wait_for(lambda: pipe.stats.staged_blocks
                                 > pipe.stats.consumed_staged)
                assert pipe.consume(it.block_key) is not None
        finally:
            pipe.close()
        assert pipe.stats.consumed_staged == 4
        assert pipe.stats.max_staged_bytes <= 2 * bb

    def test_oversized_item_left_to_main_thread(self, daf4):
        disk, store = daf4
        bb = store.layout.block_bytes
        pool = LockedPool(BufferPool())
        items = _stub_items("A", bb, [(i, 0) for i in range(4)])
        pipe = PrefetchPipeline(items, {"A": store}, pool, depth=8,
                                budget_bytes=bb - 1)
        try:
            for it in items:
                assert pipe.consume(it.block_key) is None
        finally:
            pipe.close()
        assert pipe.stats.staged_blocks == 0
        assert pipe.stats.taken_by_main == 4
        assert disk.stats.read_ops == 0

    def test_write_barrier_defers_staging(self, daf4):
        disk, store = daf4
        bb = store.layout.block_bytes
        pool = LockedPool(BufferPool())
        items = _stub_items("A", bb, [(0, 0)], barriers=[2])
        pipe = PrefetchPipeline(items, {"A": store}, pool, depth=8)
        try:
            time.sleep(0.05)
            assert pipe.stats.staged_blocks == 0
            assert disk.stats.read_ops == 0
            pipe.progress(2)
            assert _wait_for(lambda: pipe.stats.staged_blocks == 1)
            assert pipe.consume(items[0].block_key) is not None
        finally:
            pipe.close()

    def test_reader_failure_raised_on_consuming_access(self, tmp_path):
        with SimulatedDisk(tmp_path, IOModel()) as disk:
            store = DAFMatrix.create(disk, "A", (2, 1), (4, 4))
            store.write_matrix(np.ones((8, 4)), count=False)
            _corrupt_block(store, (1, 0))
            pool = LockedPool(BufferPool())
            items = _stub_items("A", store.layout.block_bytes,
                                [(0, 0), (1, 0)])
            pipe = PrefetchPipeline(items, {"A": store}, pool, depth=1)
            try:
                # Block (0,0) is intact; (1,0) is the corrupted one and the
                # error must land on *its* consume, not the first.
                assert _wait_for(lambda: pipe.stats.staged_blocks
                                 + pipe.stats.failed >= 1)
                assert pipe.consume(items[0].block_key) is not None
                assert _wait_for(lambda: pipe.stats.failed == 1)
                with pytest.raises(CorruptBlockError):
                    pipe.consume(items[1].block_key)
            finally:
                pipe.close()
            assert pipe.stats.failed == 1
            store.close()

    def test_close_discards_staged_unconsumed(self, daf4):
        disk, store = daf4
        bb = store.layout.block_bytes
        pool = LockedPool(BufferPool())
        items = _stub_items("A", bb, [(i, 0) for i in range(4)])
        pipe = PrefetchPipeline(items, {"A": store}, pool, depth=8)
        assert _wait_for(lambda: pipe.stats.staged_blocks == 4)
        first = pipe.consume(items[0].block_key)
        assert first is not None
        pipe.close()
        assert pipe.stats.discarded == 3
        # The consumed block keeps its consumer pin; the discarded ones were
        # unpinned by the discard and dropped from the pool.
        assert pool.pin_count(items[0].block_key) == 1
        assert len(pool) == 1

    def test_consume_order_mismatch_is_typed(self, daf4):
        disk, store = daf4
        pool = LockedPool(BufferPool())
        items = _stub_items("A", store.layout.block_bytes,
                            [(0, 0), (1, 0)])
        pipe = PrefetchPipeline(items, {"A": store}, pool, depth=8)
        try:
            with pytest.raises(ExecutionError, match="order mismatch"):
                pipe.consume(("A", (1, 0)))
        finally:
            pipe.close()

    def test_unsafe_pool_rejected(self, daf4):
        disk, store = daf4
        items = _stub_items("A", store.layout.block_bytes, [(0, 0)])
        with pytest.raises(ExecutionError, match="thread-safe"):
            PrefetchPipeline(items, {"A": store}, BufferPool(), depth=4)

    def test_bad_depth_rejected(self, daf4):
        disk, store = daf4
        items = _stub_items("A", store.layout.block_bytes, [(0, 0)])
        with pytest.raises(ExecutionError, match="depth"):
            PrefetchPipeline(items, {"A": store}, LockedPool(BufferPool()),
                             depth=0)


class TestReadSequence:
    def test_sequence_covers_every_planned_read(self, prog, result):
        from repro.codegen import IOAction
        for plan in result.plans:
            ep = build_executable_plan(prog, P, plan)
            items = ep.read_sequence()
            planned = [(i, pa.block_key) for i, inst in enumerate(ep.instances)
                       for pa in inst.reads if pa.action is IOAction.READ]
            assert [(it.instance, it.block_key) for it in items] == planned
            assert [it.seq for it in items] == list(range(len(items)))

    def test_barriers_point_at_preceding_writes(self, prog, result):
        from repro.codegen import IOAction
        for plan in result.plans:
            ep = build_executable_plan(prog, P, plan)
            for it in ep.read_sequence():
                assert it.barrier < it.instance
                if it.barrier >= 0:
                    w = ep.instances[it.barrier].write
                    assert w is not None and w.action is IOAction.WRITE
                    assert w.block_key == it.block_key

    def test_start_skips_completed_instances_but_keeps_barriers(self, prog,
                                                                result):
        ep = build_executable_plan(prog, P, result.best())
        full = ep.read_sequence()
        start = next((it.instance for it in full if it.barrier >= 0),
                     len(ep.instances))
        if start >= len(ep.instances):
            pytest.skip("plan has no read-after-write barrier")
        tail = ep.read_sequence(start=start)
        assert all(it.instance >= start for it in tail)
        # Barriers from instances before `start` are still recorded.
        assert any(it.barrier >= 0 for it in tail)
