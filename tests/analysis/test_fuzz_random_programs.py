"""Fuzzing: symbolic analysis vs the brute-force oracle on random programs.

Random static-control programs (random loop nests, affine accesses with
shifts and reversals, guards, accumulations) are pushed through the full
analysis; every dependence and sharing-opportunity pair set is checked
against the concrete oracle's ground truth.  This is the strongest
correctness evidence in the suite: the programs were picked by a PRNG, not
by whoever wrote the analyzer.
"""

import pytest

from repro.analysis import ConcreteAnalyzer, analyze
from repro.workloads.generator import random_program

PARAMS = {"n": 3}
SEEDS = list(range(14))


@pytest.mark.parametrize("seed", SEEDS)
def test_analysis_matches_oracle(seed):
    program = random_program(seed)
    analysis = analyze(program, param_values=PARAMS)
    oracle = ConcreteAnalyzer(program, PARAMS)

    for dep in analysis.dependences:
        sym = set(dep.co.pairs(PARAMS))
        raw = oracle.coaccess_pairs(dep.co.src, dep.co.tgt)
        exact = oracle.nwib_pairs(dep.co.src, dep.co.tgt)
        # Dependences: conservative NWIB keeps at least the exact pairs and
        # never invents pairs outside the raw co-access relation.
        assert exact <= sym <= raw, (
            f"seed {seed}: dependence {dep.label} pair mismatch")

    for opp in analysis.opportunities:
        if not opp.reduced:
            continue
        sym = set(opp.co.pairs(PARAMS))
        exact = oracle.nwib_pairs(opp.co.src, opp.co.tgt)
        # Opportunities: a one-one subset of the exact NWIB pairs.
        assert sym <= exact, (
            f"seed {seed}: opportunity {opp.label} claims pairs the oracle "
            f"rejects: {sorted(sym - exact)[:3]}")
        # One-one: no source or target appears twice.
        sources = [s for s, _ in sym]
        targets = [t for _, t in sym]
        assert len(sources) == len(set(sources)), f"seed {seed}: {opp.label}"
        assert len(targets) == len(set(targets)), f"seed {seed}: {opp.label}"


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_dependences_cover_all_conflicts(seed):
    """Completeness: every ordered conflicting access pair the oracle sees
    appears in some dependence's pair set (no missed dependences)."""
    program = random_program(seed)
    analysis = analyze(program, param_values=PARAMS)
    oracle = ConcreteAnalyzer(program, PARAMS)

    covered: dict[tuple, set] = {}
    for dep in analysis.dependences:
        key = (dep.co.src.key(), dep.co.tgt.key())
        covered.setdefault(key, set()).update(dep.co.pairs(PARAMS))

    for src in program.all_accesses():
        for tgt in program.all_accesses():
            if src.array is not tgt.array:
                continue
            if not (src.is_write or tgt.is_write):
                continue
            exact = oracle.nwib_pairs(src, tgt)
            got = covered.get((src.key(), tgt.key()), set())
            missing = exact - got
            assert not missing, (
                f"seed {seed}: {src!r}->{tgt!r} misses ordered pairs "
                f"{sorted(missing)[:3]}")
