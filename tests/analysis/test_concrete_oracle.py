"""Tests for the concrete instance-level analyzer itself (the oracle)."""

import pytest

from repro.analysis import ConcreteAnalyzer
from repro.ir import Schedule, lex_less
from tests.fixtures import example1_program, reverse_access_program

P = {"n1": 2, "n2": 2, "n3": 2}


@pytest.fixture(scope="module")
def oracle():
    return ConcreteAnalyzer(example1_program(), P)


class TestEventEnumeration:
    def test_event_counts(self, oracle):
        n1, n2, n3 = P["n1"], P["n2"], P["n3"]
        s1_events = n1 * n2 * 3                       # A, B reads + C write
        s2_events = n1 * n3 * n2 * 3 + n1 * n3 * (n2 - 1)
        assert len(oracle.events) == s1_events + s2_events

    def test_events_are_ordered(self, oracle):
        times = [e.time for e in oracle.events]
        for a, b in zip(times, times[1:]):
            assert a == b or lex_less(a, b)

    def test_seq_assigned(self, oracle):
        assert [e.seq for e in oracle.events] == list(range(len(oracle.events)))

    def test_guarded_reads_excluded(self, oracle):
        e_reads = [e for e in oracle.events
                   if e.array.name == "E" and not e.is_write]
        # k = 0 reads don't exist.
        assert all(e.point[2] >= 1 for e in e_reads)

    def test_events_for_block(self, oracle):
        evs = oracle.events_for_block("C", (0, 0))
        # written once by s1, read n3 times by s2
        assert sum(e.is_write for e in evs) == 1
        assert sum(not e.is_write for e in evs) == P["n3"]


class TestReuseChains:
    def test_chain_per_block(self, oracle):
        chains = oracle.reuse_chains()
        c_chain = chains[("C", (0, 0))]
        assert c_chain[0].is_write  # s1 writes before s2 reads
        assert all(not e.is_write for e in c_chain[1:])

    def test_chains_ordered(self, oracle):
        for chain in oracle.reuse_chains().values():
            seqs = [e.seq for e in chain]
            assert seqs == sorted(seqs)


class TestBaseline:
    def test_baseline_bytes_formula(self, oracle):
        prog = example1_program()
        n1, n2, n3 = P["n1"], P["n2"], P["n3"]
        ab = prog.arrays["A"].block_bytes
        d = prog.arrays["D"].block_bytes
        e = prog.arrays["E"].block_bytes
        reads, writes = oracle.baseline_io_bytes()
        assert reads == (2 * n1 * n2 * ab + n1 * n2 * n3 * ab
                         + n1 * n2 * n3 * d + n1 * n3 * (n2 - 1) * e)
        assert writes == n1 * n2 * ab + n1 * n2 * n3 * e


class TestAgainstAlternateSchedule:
    def test_oracle_respects_custom_schedule(self):
        """Feeding a transformed schedule reorders the oracle's event list."""
        prog = example1_program()
        orig = Schedule.original(prog)
        oracle_orig = ConcreteAnalyzer(prog, P, orig)
        # Swap the two loop dimensions of s1 in a hand-built schedule.
        from repro.ir import AffineExpr
        rows = dict(orig.rows)
        rows["s1"] = (AffineExpr.constant(0), AffineExpr.var("k"),
                      AffineExpr.constant(0), AffineExpr.var("i"),
                      AffineExpr.constant(0))
        swapped = Schedule(rows)
        oracle_swapped = ConcreteAnalyzer(prog, P, swapped)
        def instance_order(oracle):
            seen = []
            for e in oracle.events:
                if e.access.statement.name == "s1" and e.point not in seen:
                    seen.append(e.point)
            return seen

        assert instance_order(oracle_orig) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert instance_order(oracle_swapped) == [(0, 0), (1, 0), (0, 1), (1, 1)]


class TestReverseExample:
    def test_opposite_direction_pairs(self):
        prog = reverse_access_program()
        oracle = ConcreteAnalyzer(prog, {"n": 5})
        s1w = next(a for a in prog.statement("s1").accesses if a.is_write)
        s2r = prog.statement("s2").reads[0]
        fwd = oracle.coaccess_pairs(s1w, s2r)
        bwd = oracle.coaccess_pairs(s2r, s1w)
        assert len(fwd) == 3 and len(bwd) == 2
        assert not (fwd & {(b, a) for (a, b) in bwd})
