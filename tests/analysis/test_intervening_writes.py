"""Direct tests of the intervening-write (kill-set) computation."""

import pytest

from repro.analysis import CoAccess, build_extent, intervening_write_set
from repro.ir import ProgramBuilder, Schedule


def chain_program():
    """s1 writes A[i]; s2 rewrites A[i]; s3 reads A[i] — s1's value is dead."""
    b = ProgramBuilder("chain", params=("n",))
    a = b.array("A", dims=("n",), block_shape=(4,), kind="intermediate")
    x = b.array("X", dims=("n",), block_shape=(4,))
    y = b.array("Y", dims=("n",), block_shape=(4,), kind="output")
    with b.loop("i", 0, "n"):
        b.statement("s1", kernel="copy", write=a["i"], reads=[x["i"]])
    with b.loop("i", 0, "n"):
        b.statement("s2", kernel="copy", write=a["i"], reads=[x["i"]])
    with b.loop("i", 0, "n"):
        b.statement("s3", kernel="copy", write=y["i"], reads=[a["i"]])
    return b.build()


def _access(prog, stmt, type_, array):
    for acc in prog.statement(stmt).accesses:
        if acc.type.value == type_ and acc.array.name == array:
            return acc
    raise AssertionError


class TestKillSets:
    def setup_method(self):
        self.prog = chain_program()
        self.sched = Schedule.original(self.prog)
        self.params = {"n": 3}

    def test_s2_kills_s1_to_s3(self):
        """The W->R co-access s1WA->s3RA is fully covered by s2's write."""
        src = _access(self.prog, "s1", "W", "A")
        tgt = _access(self.prog, "s3", "R", "A")
        co = CoAccess(src, tgt, build_extent(self.prog, self.sched, src, tgt))
        killer = _access(self.prog, "s2", "W", "A")
        killed, exact = intervening_write_set(self.prog, self.sched, co, killer)
        assert exact
        # The kill shadow is unbounded on its own (domains live in the
        # extent); intersect before comparing pair sets.
        sym = set(co.extent.bind(self.params).integer_points())
        dead = set(co.extent.intersect(killed).bind(self.params).integer_points())
        assert sym == dead  # every pair has the intervening write

    def test_s2_to_s3_survives(self):
        """s2WA -> s3RA has no intervening writer."""
        src = _access(self.prog, "s2", "W", "A")
        tgt = _access(self.prog, "s3", "R", "A")
        co = CoAccess(src, tgt, build_extent(self.prog, self.sched, src, tgt))
        for killer_stmt in ("s1", "s2"):
            killer = _access(self.prog, killer_stmt, "W", "A")
            killed, _ = intervening_write_set(self.prog, self.sched, co, killer)
            assert killed.is_empty(), killer_stmt

    def test_full_analysis_drops_dead_flow(self):
        from repro.analysis import analyze
        an = analyze(self.prog, param_values=self.params)
        labels = {o.label for o in an.opportunities}
        assert "s2WA->s3RA" in labels
        assert "s1WA->s3RA" not in labels
        dep_labels = {d.label for d in an.dependences}
        # The s1->s3 ordering is transitively covered through s2.
        assert "s1WA->s3RA" not in dep_labels
        assert "s1WA->s2WA" in dep_labels

    def test_dead_first_write_is_ww_opportunity(self):
        from repro.analysis import analyze
        an = analyze(self.prog, param_values=self.params)
        labels = {o.label for o in an.opportunities}
        assert "s1WA->s2WA" in labels  # the overwrite makes s1's write savable

    def test_optimizer_eliminates_all_disk_traffic_for_a(self):
        """In the best plan the intermediate A never touches disk: s1's dead
        writes are elided (no reader before s2's overwrite), s2's writes are
        elided because s3's reads are pipelined."""
        from repro.optimizer import optimize, per_array_io
        result = optimize(self.prog, self.params)
        best = result.best()
        assert "s2WA->s3RA" in best.realized_labels
        stats = per_array_io(self.prog, self.params, best)
        assert stats["A"]["writes"] == 0
        assert stats["A"]["reads"] == 0
        assert stats["A"]["writes_elided"] == 2 * 3  # both statements, n blocks
