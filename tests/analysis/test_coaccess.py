"""Tests for co-access extents (Definition 1), validated against the
concrete oracle on Example 1 and the Section-4.3 reverse-access program."""

import pytest

from repro.analysis import ConcreteAnalyzer, build_extent, enumerate_coaccesses
from repro.ir import AccessType, Schedule
from tests.fixtures import example1_program, reverse_access_program

PARAMS = {"n1": 2, "n2": 2, "n3": 2}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def sched(prog):
    return Schedule.original(prog)


@pytest.fixture(scope="module")
def oracle(prog, sched):
    return ConcreteAnalyzer(prog, PARAMS, sched)


def _access(prog, stmt, type_, array):
    s = prog.statement(stmt)
    for a in s.accesses:
        if a.type.value == type_ and a.array.name == array:
            return a
    raise AssertionError(f"no access {stmt}{type_}{array}")


def _extent_pairs(prog, sched, src, tgt):
    extent = build_extent(prog, sched, src, tgt)
    sd = src.statement.depth
    td = tgt.statement.depth
    pts = extent.bind(PARAMS).integer_points()
    return {(p[:sd], p[sd:sd + td]) for p in pts}


class TestExtentMatchesOracle:
    @pytest.mark.parametrize("src_spec,tgt_spec", [
        (("s1", "W", "C"), ("s2", "R", "C")),
        (("s2", "R", "C"), ("s1", "W", "C")),
        (("s2", "W", "E"), ("s2", "R", "E")),
        (("s2", "R", "E"), ("s2", "W", "E")),
        (("s2", "W", "E"), ("s2", "W", "E")),
        (("s2", "R", "D"), ("s2", "R", "D")),
        (("s2", "R", "C"), ("s2", "R", "C")),
        (("s1", "R", "A"), ("s1", "R", "A")),
    ])
    def test_pairs_equal_brute_force(self, prog, sched, oracle, src_spec, tgt_spec):
        src = _access(prog, *src_spec)
        tgt = _access(prog, *tgt_spec)
        symbolic = _extent_pairs(prog, sched, src, tgt)
        concrete = oracle.coaccess_pairs(src, tgt, statement_strict=True)
        assert symbolic == concrete

    def test_reverse_direction_is_empty(self, prog, sched):
        """s2RC -> s1WC: no s2 instance precedes any s1 instance."""
        src = _access(prog, "s2", "R", "C")
        tgt = _access(prog, "s1", "W", "C")
        assert _extent_pairs(prog, sched, src, tgt) == set()

    def test_guarded_access_restricts_extent(self, prog, sched, oracle):
        """The read of E exists only for k >= 1."""
        src = _access(prog, "s2", "W", "E")
        tgt = _access(prog, "s2", "R", "E")
        pairs = _extent_pairs(prog, sched, src, tgt)
        assert pairs  # nonempty
        for _, tgt_pt in pairs:
            assert tgt_pt[2] >= 1


class TestEnumerate:
    def test_enumerate_filters_types(self, prog, sched):
        rr = enumerate_coaccesses(
            prog, sched, types=[(AccessType.READ, AccessType.READ)])
        assert rr
        assert all(c.type_str == "R->R" for c in rr)

    def test_labels(self, prog, sched):
        cos = enumerate_coaccesses(prog, sched)
        labels = {c.label() for c in cos}
        assert "s1WC->s2RC" in labels
        assert "s2WE->s2RE" in labels

    def test_is_self_flag(self, prog, sched):
        cos = enumerate_coaccesses(prog, sched)
        by_label = {c.label(): c for c in cos}
        assert by_label["s2WE->s2RE"].is_self
        assert not by_label["s1WC->s2RC"].is_self


class TestReverseProgram:
    """Section 4.3: two opposite-direction dependences through array A."""

    def setup_method(self):
        self.prog = reverse_access_program()
        self.sched = Schedule.original(self.prog)
        self.params = {"n": 5}
        self.oracle = ConcreteAnalyzer(self.prog, self.params, self.sched)

    def test_both_directions_nonempty(self):
        s1w = _access(self.prog, "s1", "W", "A")
        s2r = _access(self.prog, "s2", "R", "A")
        fwd = build_extent(self.prog, self.sched, s1w, s2r).bind(self.params)
        bwd = build_extent(self.prog, self.sched, s2r, s1w).bind(self.params)
        fwd_pairs = {(p[0], p[1]) for p in fwd.integer_points()}
        bwd_pairs = {(p[0], p[1]) for p in bwd.integer_points()}
        # P(s1WA->s2RA) = {(i, i') : i + i' = n-1, 0 <= i <= (n-1)/2}
        assert fwd_pairs == {(0, 4), (1, 3), (2, 2)}
        # P(s2RA->s1WA) = {(i', i) : i' + i = n-1, 0 <= i' <= (n-2)/2}
        assert bwd_pairs == {(0, 4), (1, 3)}

    def test_matches_oracle(self):
        s1w = _access(self.prog, "s1", "W", "A")
        s2r = _access(self.prog, "s2", "R", "A")
        fwd = build_extent(self.prog, self.sched, s1w, s2r).bind(self.params)
        sym = {(p[0:1], p[1:2]) for p in fwd.integer_points()}
        conc = self.oracle.coaccess_pairs(s1w, s2r, statement_strict=True)
        assert sym == conc
