"""Tests for no-write-in-between pruning and multiplicity reduction,
cross-validated against the concrete oracle."""

import pytest

from repro.analysis import (ConcreteAnalyzer, CoAccess, analyze, build_extent,
                            classify_multiplicity, is_functional,
                            no_write_in_between, reduce_to_one_one)
from repro.ir import Schedule
from tests.fixtures import example1_program

PARAMS = {"n1": 2, "n2": 2, "n3": 2}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def sched(prog):
    return Schedule.original(prog)


@pytest.fixture(scope="module")
def oracle(prog, sched):
    return ConcreteAnalyzer(prog, PARAMS, sched)


@pytest.fixture(scope="module")
def analysis(prog):
    return analyze(prog, param_values=PARAMS)


def _access(prog, stmt, type_, array):
    for a in prog.statement(stmt).accesses:
        if a.type.value == type_ and a.array.name == array:
            return a
    raise AssertionError


def _pairs(co, params=PARAMS):
    return set(co.pairs(params))


class TestNoWriteInBetween:
    @pytest.mark.parametrize("src_spec,tgt_spec", [
        (("s2", "W", "E"), ("s2", "R", "E")),
        (("s2", "W", "E"), ("s2", "W", "E")),
        (("s2", "R", "E"), ("s2", "R", "E")),
        (("s1", "W", "C"), ("s2", "R", "C")),
        (("s2", "R", "D"), ("s2", "R", "D")),
    ])
    def test_matches_oracle(self, prog, sched, oracle, src_spec, tgt_spec):
        src = _access(prog, *src_spec)
        tgt = _access(prog, *tgt_spec)
        co = CoAccess(src, tgt, build_extent(prog, sched, src, tgt))
        pruned = no_write_in_between(prog, sched, co)
        assert _pairs(pruned) == oracle.nwib_pairs(src, tgt, statement_strict=True)

    def test_e_write_read_becomes_consecutive(self, prog, sched):
        """After NWIB, W->R on E pairs only consecutive k's."""
        src = _access(prog, "s2", "W", "E")
        tgt = _access(prog, "s2", "R", "E")
        co = CoAccess(src, tgt, build_extent(prog, sched, src, tgt))
        pruned = no_write_in_between(prog, sched, co)
        for (s, t) in _pairs(pruned):
            assert t == (s[0], s[1], s[2] + 1)

    def test_e_read_read_fully_killed(self, prog, sched):
        """Reads of E at k and k+1 are separated by the write at k."""
        tgt = _access(prog, "s2", "R", "E")
        co = CoAccess(tgt, tgt, build_extent(prog, sched, tgt, tgt))
        pruned = no_write_in_between(prog, sched, co)
        assert pruned.extent.is_empty()


class TestMultiplicity:
    def test_wc_rc_is_one_many_before_reduction(self, prog, sched):
        src = _access(prog, "s1", "W", "C")
        tgt = _access(prog, "s2", "R", "C")
        co = CoAccess(src, tgt, build_extent(prog, sched, src, tgt))
        pruned = no_write_in_between(prog, sched, co)
        mult = classify_multiplicity(pruned)
        assert mult.src == "one"   # each target (read) has exactly one writer
        assert mult.tgt == "many"  # one write is read n3 times

    def test_reduction_pins_first_read(self, prog, sched):
        src = _access(prog, "s1", "W", "C")
        tgt = _access(prog, "s2", "R", "C")
        co = CoAccess(src, tgt, build_extent(prog, sched, src, tgt))
        pruned = no_write_in_between(prog, sched, co)
        reduced, ok = reduce_to_one_one(pruned)
        assert ok
        assert classify_multiplicity(reduced).is_one_one
        # Every write is paired with its j=0 read (Figure 1(b) pipelining).
        pairs = _pairs(reduced)
        assert pairs == {((i, k), (i, 0, k)) for i in range(2) for k in range(2)}

    def test_reduction_preserves_source_coverage(self, prog, sched):
        """Reduction must not drop any source instance (Remark A.1)."""
        src = _access(prog, "s1", "W", "C")
        tgt = _access(prog, "s2", "R", "C")
        co = CoAccess(src, tgt, build_extent(prog, sched, src, tgt))
        pruned = no_write_in_between(prog, sched, co)
        reduced, _ = reduce_to_one_one(pruned)
        before = {s for (s, _) in _pairs(pruned)}
        after = {s for (s, _) in _pairs(reduced)}
        assert before == after

    def test_rd_chain_reduction(self, prog, sched):
        """s2RD->s2RD (many-many over i<i') reduces to consecutive i's."""
        acc = _access(prog, "s2", "R", "D")
        co = CoAccess(acc, acc, build_extent(prog, sched, acc, acc))
        pruned = no_write_in_between(prog, sched, co)
        reduced, ok = reduce_to_one_one(pruned)
        assert ok
        for (s, t) in _pairs(reduced):
            assert t == (s[0] + 1, s[1], s[2])

    def test_is_functional_detects_functions(self, prog, sched):
        acc = _access(prog, "s2", "W", "E")
        tgt = _access(prog, "s2", "R", "E")
        co = CoAccess(acc, tgt, build_extent(prog, sched, acc, tgt))
        pruned = no_write_in_between(prog, sched, co)
        src_vars = ["s_" + v for v in acc.statement.loop_vars]
        tgt_vars = ["t_" + v for v in tgt.statement.loop_vars]
        assert is_functional(pruned.extent, determined=tgt_vars, given=src_vars)
        assert is_functional(pruned.extent, determined=src_vars, given=tgt_vars)


class TestAnalyzeExample1:
    def test_opportunity_set_n3_2(self, analysis):
        labels = {o.label for o in analysis.opportunities}
        assert labels == {"s1WC->s2RC", "s2WE->s2WE", "s2WE->s2RE",
                          "s2RC->s2RC", "s2RD->s2RD"}

    def test_all_reduced(self, analysis):
        assert all(o.reduced for o in analysis.opportunities)

    def test_dependence_set(self, analysis):
        labels = {d.label for d in analysis.dependences}
        # Flow of C into s2, E accumulation chains.
        assert "s1WC->s2RC" in labels
        assert "s2WE->s2RE" in labels
        assert "s2WE->s2WE" in labels
        # No reversed flow.
        assert "s2RC->s1WC" not in labels

    def test_opportunity_set_n3_1(self, prog):
        an = analyze(prog, param_values={"n1": 2, "n2": 2, "n3": 1})
        labels = {o.label for o in an.opportunities}
        # Paper Section 6.1: with n3 = 1, s2RC->s2RC does not exist.
        assert labels == {"s1WC->s2RC", "s2WE->s2WE", "s2WE->s2RE", "s2RD->s2RD"}

    def test_lookup_raises_on_missing(self, analysis):
        with pytest.raises(KeyError):
            analysis.opportunity("s9WZ->s9RZ")
