"""Property-based end-to-end tests: random small programs through the whole
pipeline — analysis cross-checked against the concrete oracle, every plan
legal, numerically correct, and byte-exact on I/O."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import optimize, reference_outputs, run_program
from repro.analysis import ConcreteAnalyzer, analyze
from repro.ir import Schedule, lex_less
from repro.ops import add_multiply_program, two_matmul_program

# Hypothesis drives full optimize+execute pipelines; minutes, not seconds.
pytestmark = pytest.mark.slow


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n1=st.integers(1, 3), n2=st.integers(1, 3), n3=st.integers(1, 2))
def test_example1_plans_always_legal_and_exact(n1, n2, n3):
    """For random block grids: every plan orders every dependence pair and
    predicts cost >= the best plan's."""
    prog = add_multiply_program(block_rows=6, block_cols=4, d_cols=5)
    params = {"n1": n1, "n2": n2, "n3": n3}
    result = optimize(prog, params)
    analysis = result.analysis
    for plan in result.plans:
        for dep in analysis.dependences:
            for (ps, pt) in dep.co.pairs(params):
                ts = plan.schedule.time_vector(dep.co.src.statement, ps, params)
                tt = plan.schedule.time_vector(dep.co.tgt.statement, pt, params)
                assert lex_less(ts, tt)
        assert plan.cost.read_bytes <= plan.cost.baseline_read_bytes
        assert plan.cost.write_bytes <= plan.cost.baseline_write_bytes
    best = result.best()
    assert all(best.cost.io_seconds <= p.cost.io_seconds for p in result.plans)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n1=st.integers(1, 2), n2=st.integers(1, 2), n3=st.integers(1, 2),
       seed=st.integers(0, 100))
def test_example1_execution_matches_reference(n1, n2, n3, seed, tmp_path_factory):
    prog = add_multiply_program(block_rows=6, block_cols=4, d_cols=5)
    params = {"n1": n1, "n2": n2, "n3": n3}
    result = optimize(prog, params, max_set_size=3)
    rng = np.random.default_rng(seed)
    inputs = {n: rng.standard_normal(prog.arrays[n].shape_elems(params))
              for n in ("A", "B", "D")}
    truth = (inputs["A"] + inputs["B"]) @ inputs["D"]
    best = result.best()
    td = tmp_path_factory.mktemp("prop")
    report, outputs = run_program(prog, params, best, td, inputs)
    assert np.allclose(outputs["E"], truth)
    assert report.io.read_bytes == best.cost.read_bytes
    assert report.io.write_bytes == best.cost.write_bytes


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n1=st.integers(1, 2), n2=st.integers(1, 2),
       n3=st.integers(1, 2), n4=st.integers(1, 2))
def test_two_matmul_analysis_matches_oracle(n1, n2, n3, n4):
    """Symbolic sharing-opportunity pair sets == brute-force NWIB pairs."""
    prog = two_matmul_program((6, 5), (5, 4), (5, 3))
    params = {"n1": n1, "n2": n2, "n3": n3, "n4": n4}
    an = analyze(prog, param_values=params)
    oracle = ConcreteAnalyzer(prog, params)
    for dep in an.dependences:
        sym = set(dep.co.pairs(params))
        conc = oracle.nwib_pairs(dep.co.src, dep.co.tgt, statement_strict=True)
        # Dependences use conservative NWIB: a superset of the exact pairs.
        assert sym >= conc
        # And never more than the raw co-access relation.
        assert sym <= oracle.coaccess_pairs(dep.co.src, dep.co.tgt)
    for opp in an.opportunities:
        sym = set(opp.co.pairs(params))
        conc = oracle.nwib_pairs(opp.co.src, opp.co.tgt, statement_strict=True)
        # Opportunities are one-one reductions of the exact NWIB pairs.
        assert sym <= conc


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1000))
def test_baseline_cost_equals_oracle_bytes(seed):
    rng = np.random.default_rng(seed)
    n1, n2, n3 = (int(rng.integers(1, 4)) for _ in range(3))
    prog = add_multiply_program(block_rows=6, block_cols=4, d_cols=5)
    params = {"n1": n1, "n2": n2, "n3": n3}
    from repro.optimizer import evaluate_plan
    cost = evaluate_plan(prog, params, Schedule.original(prog), [])
    reads, writes = ConcreteAnalyzer(prog, params).baseline_io_bytes()
    assert cost.read_bytes == reads
    assert cost.write_bytes == writes
