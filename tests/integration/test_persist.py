"""Tests for plan persistence (save / reload / re-cost / execute)."""

import json

import numpy as np
import pytest

from repro import analyze, optimize, run_program
from repro.exceptions import ReproError
from repro.persist import (load_plan, save_plan, schedule_from_dict,
                           schedule_to_dict)
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


class TestScheduleRoundtrip:
    def test_roundtrip_preserves_times(self, prog, result):
        best = result.best()
        data = schedule_to_dict(best.schedule)
        back = schedule_from_dict(json.loads(json.dumps(data)))
        for stmt in prog.statements:
            for point in stmt.instances(P):
                assert (back.time_vector(stmt, point, P)
                        == best.schedule.time_vector(stmt, point, P))

    def test_meta_carried(self, result):
        data = schedule_to_dict(result.best().schedule)
        back = schedule_from_dict(data)
        assert back.meta.get("realized") == result.best().schedule.meta.get("realized")


class TestSaveLoad:
    def test_reloaded_plan_costs_identically(self, prog, result, tmp_path):
        best = result.best()
        path = tmp_path / "plan.json"
        save_plan(path, best, prog)
        analysis = analyze(prog, param_values=P)
        loaded = load_plan(path, prog, analysis, P, result.io_model)
        assert loaded.cost.read_bytes == best.cost.read_bytes
        assert loaded.cost.write_bytes == best.cost.write_bytes
        assert loaded.cost.memory_bytes == best.cost.memory_bytes
        assert sorted(loaded.realized_labels) == sorted(best.realized_labels)

    def test_reloaded_plan_executes(self, prog, result, tmp_path):
        best = result.best()
        path = tmp_path / "plan.json"
        save_plan(path, best, prog)
        analysis = analyze(prog, param_values=P)
        loaded = load_plan(path, prog, analysis, P, result.io_model)
        rng = np.random.default_rng(2)
        inputs = {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
                  for n in ("A", "B", "D")}
        report, outputs = run_program(prog, P, loaded, tmp_path / "work", inputs)
        assert np.allclose(outputs["E"],
                           (inputs["A"] + inputs["B"]) @ inputs["D"])
        assert report.io.read_bytes == loaded.cost.read_bytes

    def test_roundtripped_plan_executes_byte_identically(self, prog, result,
                                                         tmp_path):
        """Plan -> bytes -> plan: the reloaded plan's execution is
        indistinguishable from the original's — byte-identical outputs and
        identical I/O counters."""
        best = result.best()
        path = tmp_path / "plan.json"
        save_plan(path, best, prog)
        analysis = analyze(prog, param_values=P)
        loaded = load_plan(path, prog, analysis, P, result.io_model)

        rng = np.random.default_rng(5)
        inputs = {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
                  for n in ("A", "B", "D")}
        rep_a, out_a = run_program(prog, P, best, tmp_path / "a", inputs)
        rep_b, out_b = run_program(prog, P, loaded, tmp_path / "b", inputs)
        assert set(out_a) == set(out_b)
        for name in out_a:
            assert np.array_equal(out_a[name], out_b[name])
        for field in ("read_bytes", "write_bytes", "read_ops", "write_ops"):
            assert getattr(rep_a.io, field) == getattr(rep_b.io, field)
        assert rep_a.pool_hits == rep_b.pool_hits
        assert rep_a.peak_memory_bytes == rep_b.peak_memory_bytes

    def test_recost_at_new_params(self, prog, result, tmp_path):
        """The Remark's workflow: same schedule template, new sizes."""
        best = result.best()
        path = tmp_path / "plan.json"
        save_plan(path, best, prog)
        bigger = {"n1": 3, "n2": 3, "n3": 1}
        analysis = analyze(prog, param_values=bigger)
        loaded = load_plan(path, prog, analysis, bigger, result.io_model)
        assert loaded.cost.read_bytes > best.cost.read_bytes  # more blocks

    def test_wrong_program_rejected(self, prog, result, tmp_path):
        from repro.ops import linreg_program
        path = tmp_path / "plan.json"
        save_plan(path, result.best(), prog)
        other = linreg_program()
        analysis = analyze(other, param_values={"n": 2})
        with pytest.raises(ReproError, match="saved for program"):
            load_plan(path, other, analysis, {"n": 2})

    def test_garbage_rejected(self, prog, result, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"format": "nope"}))
        analysis = analyze(prog, param_values=P)
        with pytest.raises(ReproError, match="not a saved plan"):
            load_plan(path, prog, analysis, P)
