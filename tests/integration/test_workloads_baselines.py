"""Integration tests: workload configs, baselines, block-size advisor."""

import numpy as np
import pytest

from repro import optimize, run_program
from repro.baselines import manual_best, matlab_like, scidb_like
from repro.exceptions import OptimizationError
from repro.extensions import BlockSizeAdvisor
from repro.ops import add_multiply_program
from repro.workloads import (add_multiply_config, generate_inputs,
                             linreg_config, two_matmul_config)

SMALL = {"n1": 2, "n2": 2, "n3": 1}


@pytest.fixture(scope="module")
def small_result():
    prog = add_multiply_program()
    return prog, optimize(prog, SMALL)


class TestConfigs:
    def test_table2_geometry(self):
        cfg = add_multiply_config()
        assert cfg.params == {"n1": 12, "n2": 12, "n3": 1}
        assert cfg.program.arrays["A"].num_blocks(cfg.params) == (12, 12)
        assert cfg.paper_block_bytes["A"] == 6000 * 4000 * 8

    def test_table3_configs_differ(self):
        a = two_matmul_config("A")
        b = two_matmul_config("B")
        assert a.params != b.params
        assert a.paper_block_bytes["A"] != b.paper_block_bytes["A"]

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            two_matmul_config("C")

    def test_linreg_geometry(self):
        cfg = linreg_config()
        assert cfg.program.arrays["X"].num_blocks(cfg.params) == (25, 1)
        assert len(cfg.program.statements) == 7

    def test_generate_inputs_shapes(self):
        cfg = add_multiply_config()
        inputs = generate_inputs(cfg, seed=1)
        assert set(inputs) == {"A", "B", "D"}
        assert inputs["A"].shape == cfg.program.arrays["A"].shape_elems(cfg.params)

    def test_generate_inputs_deterministic(self):
        cfg = add_multiply_config()
        a = generate_inputs(cfg, seed=5)["A"]
        b = generate_inputs(cfg, seed=5)["A"]
        assert np.array_equal(a, b)

    def test_run_block_bytes_scaled_down(self):
        cfg = add_multiply_config(scale=100)
        assert cfg.run_block_bytes()["A"] == 60 * 40 * 8
        assert cfg.paper_block_bytes["A"] // cfg.run_block_bytes()["A"] == 100 * 100


class TestBaselines:
    def test_ordering(self, small_result, tmp_path_factory):
        prog, result = small_result
        inputs = {n: np.random.default_rng(0).standard_normal(
            prog.arrays[n].shape_elems(SMALL)) for n in ("A", "B", "D")}
        mk = tmp_path_factory.mktemp
        m = matlab_like(prog, SMALL, result, mk("m"), inputs)
        s = scidb_like(prog, SMALL, result, mk("s"), inputs)
        h = manual_best(prog, SMALL, result, mk("h"), inputs)
        ours, _ = run_program(prog, SMALL, result.best(), mk("o"), inputs,
                              io_model=result.io_model)
        assert h.total_seconds <= ours.simulated_total_seconds * 1.05
        assert m.total_seconds > ours.simulated_total_seconds
        assert s.total_seconds >= m.total_seconds * 0.9

    def test_report_repr(self, small_result, tmp_path):
        prog, result = small_result
        inputs = {n: np.zeros(prog.arrays[n].shape_elems(SMALL))
                  for n in ("A", "B", "D")}
        rep = matlab_like(prog, SMALL, result, tmp_path, inputs)
        assert "matlab-like" in repr(rep)
        assert rep.total_seconds == pytest.approx(
            (rep.io_seconds + rep.cpu_seconds) * rep.overhead_factor)


@pytest.mark.slow
class TestBlockSizeAdvisor:
    def test_sweep_and_recommend(self):
        advisor = BlockSizeAdvisor(
            lambda rows: add_multiply_program(block_rows=rows), SMALL)
        choices = advisor.sweep([40, 60], max_set_size=2)
        assert len(choices) == 2
        assert all(c.best is not None for c in choices)
        rec = advisor.recommend([40, 60], max_set_size=2)
        assert rec.best.cost.io_seconds == min(
            c.best.cost.io_seconds for c in choices)

    def test_memory_cap_filters_options(self):
        advisor = BlockSizeAdvisor(
            lambda rows: add_multiply_program(block_rows=rows), SMALL)
        # Cap below any plan's footprint: nothing fits anywhere.
        with pytest.raises(OptimizationError):
            advisor.recommend([40], memory_cap_bytes=16, max_set_size=1)

    def test_bigger_blocks_lose_to_sharing(self):
        """The clubsuit claim at unit-test scale."""
        advisor = BlockSizeAdvisor(
            lambda rows: add_multiply_program(block_rows=rows), SMALL)
        small_opt = advisor.evaluate(40, max_set_size=3)
        big_plan0 = advisor.evaluate(90, max_set_size=0).result.original_plan
        assert small_opt.best.cost.io_seconds < big_plan0.cost.io_seconds
