"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

EXAMPLE1_SRC = """
for (i = 0; i < n1; ++i)
  for (k = 0; k < n2; ++k)
    C[i,k] = A[i,k] + B[i,k];
for (i = 0; i < n1; ++i)
  for (j = 0; j < n3; ++j)
    for (k = 0; k < n2; ++k)
      E[i,j] += C[i,k] * D[k,j];
"""

DECLS = {
    "params": ["n1", "n2", "n3"],
    "bindings": {"n1": 2, "n2": 2, "n3": 1},
    "arrays": {
        "A": {"dims": ["n1", "n2"], "block_shape": [6, 4]},
        "B": {"dims": ["n1", "n2"], "block_shape": [6, 4]},
        "C": {"dims": ["n1", "n2"], "block_shape": [6, 4], "kind": "intermediate"},
        "D": {"dims": ["n2", "n3"], "block_shape": [4, 5]},
        "E": {"dims": ["n1", "n3"], "block_shape": [6, 5], "kind": "output"},
    },
}


@pytest.fixture()
def files(tmp_path):
    src = tmp_path / "prog.c"
    src.write_text(EXAMPLE1_SRC)
    decls = tmp_path / "decls.json"
    decls.write_text(json.dumps(DECLS))
    return str(src), str(decls)


def test_optimize_command(files, capsys):
    src, decls = files
    assert main(["optimize", src, decls]) == 0
    out = capsys.readouterr().out
    assert "sharing opportunities" in out
    assert "best plan under cap" in out
    assert "s1WC->s2RC" in out


def test_explain_command_prints_code(files, capsys):
    src, decls = files
    assert main(["explain", src, decls]) == 0
    out = capsys.readouterr().out
    assert "for (" in out
    assert "reuse (in memory)" in out


def test_memory_cap_changes_choice(files, capsys):
    src, decls = files
    assert main(["optimize", src, decls, "--memory-cap", "400000"]) == 0
    out = capsys.readouterr().out
    assert "best plan under cap" in out


def test_missing_bindings_rejected(tmp_path, files):
    src, _ = files
    bad = dict(DECLS)
    bad = {**DECLS, "bindings": {}}
    decls = tmp_path / "bad.json"
    decls.write_text(json.dumps(bad))
    with pytest.raises(SystemExit):
        main(["optimize", src, str(decls)])


def test_demo_command(capsys):
    assert main(["demo", "--blocks", "2"]) == 0
    out = capsys.readouterr().out
    assert "result correct: True" in out
    assert "byte-exact vs prediction: True" in out


def test_demo_observed_and_validated(tmp_path, capsys):
    trace_file = tmp_path / "demo.jsonl"
    assert main(["demo", "--blocks", "2", "--trace", str(trace_file),
                 "--metrics", "--validate-cost"]) == 0
    out = capsys.readouterr().out
    assert "cost-model validation: PASS" in out
    assert "# TYPE" in out                       # metrics exposition printed
    # the JSONL trace and its Chrome companion both exist and parse
    events = [json.loads(line) for line in trace_file.read_text().splitlines()]
    assert any(e["name"] == "exec.io" for e in events)
    assert any(e["name"] == "run_program" for e in events)
    chrome = json.loads((tmp_path / "demo.jsonl.chrome.json").read_text())
    assert chrome["traceEvents"]


def test_demo_parallel_search_validates(capsys):
    assert main(["demo", "--blocks", "2", "--workers", "2",
                 "--validate-cost"]) == 0
    out = capsys.readouterr().out
    assert "cost-model validation: PASS" in out


JOBS_JSONL = """\
{"program": "add_multiply", "params": {"n1": 2, "n2": 2, "n3": 1}, "seed": 0, "seeds": {"D": 1}, "plan_exact": true}
{"program": "add_multiply", "params": {"n1": 2, "n2": 2, "n3": 1}, "seed": 0, "seeds": {"D": 2}, "plan_exact": true}
"""


def test_advise_command_live_baseline(tmp_path, capsys):
    jobs = tmp_path / "jobs.jsonl"
    jobs.write_text(JOBS_JSONL)
    report = tmp_path / "report.json"
    assert main(["advise", "--jobs", str(jobs), "--json", str(report),
                 "--workdir", str(tmp_path / "wd")]) == 0
    out = capsys.readouterr().out
    assert "Workload: 2 jobs" in out
    assert "recommendation" in out
    doc = json.loads(report.read_text())
    assert doc["kind"] == "repro.advisor.report"
    assert doc["recommendations"]


def test_advise_min_savings_requires_apply(tmp_path):
    jobs = tmp_path / "jobs.jsonl"
    jobs.write_text(JOBS_JSONL)
    with pytest.raises(SystemExit, match="requires --apply"):
        main(["advise", "--jobs", str(jobs), "--min-savings", "0.1"])
