"""Tests for the plan-verification utilities, including failure detection
when fed deliberately broken schedules."""

import pytest

from repro.exceptions import ScheduleError
from repro.ir import AffineExpr, Schedule
from repro.optimizer import optimize
from repro.optimizer.plan import Plan
from repro.verify import (check_injectivity, check_legality,
                          check_realization, verify_plan)
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 2}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


class TestAllPlansVerify:
    def test_every_plan_passes_all_checks(self, prog, result):
        for plan in result.plans:
            verify_plan(prog, P, plan, result.analysis)


class TestBrokenSchedulesAreCaught:
    def _broken_plan(self, result, rows):
        best = result.best()
        return Plan(999, Schedule(rows), best.realized, best.cost)

    def test_reversed_order_violates_dependences(self, prog, result):
        """Running s2 before s1 breaks the flow of C."""
        rows = dict(Schedule.original(prog).rows)
        rows["s1"], rows["s2"] = \
            (AffineExpr.constant(1),) + tuple(rows["s1"])[1:], \
            (AffineExpr.constant(0),) + tuple(rows["s2"])[1:]
        plan = self._broken_plan(result, rows)
        with pytest.raises(ScheduleError, match="violates dependence"):
            check_legality(prog, P, plan, result.analysis)

    def test_non_injective_schedule_caught(self, prog, result):
        """Dropping the k dimension collapses instances onto one time."""
        orig = Schedule.original(prog)
        rows = dict(orig.rows)
        rows["s1"] = (AffineExpr.constant(0), AffineExpr.var("i"),
                      AffineExpr.constant(0), AffineExpr.constant(0),
                      AffineExpr.constant(0))
        plan = self._broken_plan(result, rows)
        with pytest.raises(ScheduleError, match="assigned to both"):
            check_injectivity(prog, P, plan)

    def test_unrealized_sharing_caught(self, prog, result):
        """The original order does not co-schedule s1 with s2, so claiming
        the s1WC->s2RC pipeline under it must fail Table 1's test."""
        best = result.best()
        if not any(o.label == "s1WC->s2RC" for o in best.realized):
            pytest.skip("best plan does not pipeline C")
        plan = Plan(999, Schedule.original(prog), best.realized, best.cost)
        with pytest.raises(ScheduleError, match="not co-scheduled"):
            check_realization(prog, P, plan)

    def test_original_plan_is_fine(self, prog, result):
        verify_plan(prog, P, result.original_plan, result.analysis)
