"""Crash tolerance of the process-pool search layer.

A worker crash surfaces as :class:`BrokenProcessPool` on the driver.  The
contract (mirroring the storage layer's retry discipline): restart the pool
once and re-run the level — re-running is sound because legality tests are
pure and cache merges idempotent — and if the restarted pool breaks too,
degrade permanently to driver-side sequential evaluation.  Either way the
results are bit-identical to the sequential search; only
``AprioriStats.pool_restarts`` / ``sequential_fallbacks`` reveal the crash.
"""

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.analysis import analyze
from repro.optimizer import ConstraintCache, IOModel
from repro.optimizer.apriori import AprioriStats, enumerate_feasible_sets
from repro.optimizer.parallel import ParallelOptimizerPool
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}


class _BrokenPool:
    """An executor whose workers are already dead."""

    def submit(self, *args, **kwargs):
        raise BrokenProcessPool("worker died")

    def shutdown(self, *args, **kwargs):
        pass


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def analysis(prog):
    return analyze(prog, param_values=P)


@pytest.fixture(scope="module")
def seq(prog, analysis):
    return enumerate_feasible_sets(analysis, ConstraintCache(prog))


def _keys(feasible):
    return [idx_set for idx_set, _ in feasible]


def test_broken_pool_restarts_once_and_matches_sequential(analysis, seq):
    seq_feasible, _ = seq
    with ParallelOptimizerPool(analysis, P, IOModel(), workers=2) as pool:
        pool._pool.shutdown(wait=False)
        pool._pool = _BrokenPool()
        feasible, stats = pool.enumerate_feasible_sets()
        assert stats.pool_restarts == 1
        assert stats.sequential_fallbacks == 0
        assert not pool._degraded
        assert _keys(feasible) == _keys(seq_feasible)


def test_double_break_degrades_to_sequential(analysis, seq):
    seq_feasible, seq_stats = seq
    with ParallelOptimizerPool(analysis, P, IOModel(), workers=2) as pool:
        pool._pool.shutdown(wait=False)
        pool._pool = _BrokenPool()
        # The "restarted" pool is broken too: permanent degradation.
        pool._spawn_pool = lambda: _BrokenPool()
        feasible, stats = pool.enumerate_feasible_sets()
        assert stats.pool_restarts == 1
        assert stats.sequential_fallbacks >= 1
        assert pool._degraded
        assert _keys(feasible) == _keys(seq_feasible)
        assert stats.candidates_tested == seq_stats.candidates_tested
        assert stats.feasible == seq_stats.feasible
        # Costing on a degraded pool never touches a pool again.
        plans = pool.cost_plans(feasible, stats)
        assert len(plans) == len(feasible)
        assert all(p.cost is not None for p in plans)


def test_costing_survives_broken_pool(analysis, seq):
    seq_feasible, _ = seq
    with ParallelOptimizerPool(analysis, P, IOModel(), workers=2) as pool:
        healthy = pool.cost_plans(seq_feasible)
        pool._pool.shutdown(wait=False)
        pool._pool = _BrokenPool()
        pool._spawn_pool = lambda: _BrokenPool()
        stats = AprioriStats()
        degraded = pool.cost_plans(seq_feasible, stats)
        assert stats.sequential_fallbacks >= 1
        assert [p.cost.io_seconds for p in degraded] == \
            [p.cost.io_seconds for p in healthy]
        assert [p.cost.total_bytes for p in degraded] == \
            [p.cost.total_bytes for p in healthy]
