"""Unit tests for the cost evaluator (Section 5.4)."""

import pytest

from repro.analysis import ConcreteAnalyzer, analyze
from repro.ir import Schedule
from repro.optimizer import IOModel, evaluate_plan, trace_plan
from tests.fixtures import example1_program

P = {"n1": 3, "n2": 2, "n3": 2}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def analysis(prog):
    return analyze(prog, param_values=P)


class TestIOModel:
    def test_linear_time(self):
        m = IOModel(read_bw=100, write_bw=50)
        assert m.seconds(200, 100) == pytest.approx(2 + 2)

    def test_default_paper_bandwidths(self):
        m = IOModel()
        assert m.seconds(96_000_000, 0) == pytest.approx(1.0)
        assert m.seconds(0, 60_000_000) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            IOModel(read_bw=0)


class TestBaselinePlan:
    def test_baseline_matches_concrete_oracle(self, prog, analysis):
        sched = Schedule.original(prog)
        cost = evaluate_plan(prog, P, sched, [])
        oracle = ConcreteAnalyzer(prog, P)
        reads, writes = oracle.baseline_io_bytes()
        assert cost.read_bytes == reads
        assert cost.write_bytes == writes
        assert cost.saved_read_bytes == 0
        assert cost.saved_write_bytes == 0

    def test_baseline_formula(self, prog):
        """Paper Example 1 counting: A,B read once; C written once, read n3
        times; D read n1 times; E written n2*n3 blocks' worth n2 times and
        read (n2-1) times."""
        sched = Schedule.original(prog)
        cost = evaluate_plan(prog, P, sched, [])
        n1, n2, n3 = P["n1"], P["n2"], P["n3"]
        ab = prog.arrays["A"].block_bytes
        d = prog.arrays["D"].block_bytes
        e = prog.arrays["E"].block_bytes
        exp_reads = (2 * n1 * n2 * ab          # A and B once
                     + n1 * n2 * n3 * ab       # C read per (i,j,k)
                     + n1 * n2 * n3 * d        # D read per (i,j,k)
                     + n1 * n3 * (n2 - 1) * e)  # E read for k >= 1
        exp_writes = n1 * n2 * ab + n1 * n3 * n2 * e
        assert cost.read_bytes == exp_reads
        assert cost.write_bytes == exp_writes

    def test_memory_is_per_instance_blocks(self, prog):
        sched = Schedule.original(prog)
        cost = evaluate_plan(prog, P, sched, [])
        ab = prog.arrays["A"].block_bytes
        d = prog.arrays["D"].block_bytes
        e = prog.arrays["E"].block_bytes
        # s2 touches C, D, E: the largest working set.
        assert cost.memory_bytes == ab + d + e


class TestRealizedSavings:
    def test_we_re_pair_saves_e_reads(self, prog, analysis):
        opp = analysis.opportunity("s2WE->s2RE")
        sched = Schedule.original(prog)  # original order realizes self W->R
        cost = evaluate_plan(prog, P, sched, [opp])
        e = prog.arrays["E"].block_bytes
        n1, n2, n3 = P["n1"], P["n2"], P["n3"]
        assert cost.saved_read_bytes == n1 * n3 * (n2 - 1) * e
        # Memory: E block held across consecutive k.
        base = evaluate_plan(prog, P, sched, [])
        assert cost.memory_bytes >= base.memory_bytes

    def test_ww_alone_yields_no_saving(self, prog, analysis):
        """W->W without the covering W->R must not elide writes (the read in
        between needs the disk copy) — the soundness downgrade."""
        opp = analysis.opportunity("s2WE->s2WE")
        sched = Schedule.original(prog)
        cost = evaluate_plan(prog, P, sched, [opp])
        assert cost.saved_write_bytes == 0

    def test_ww_with_wr_saves_writes(self, prog, analysis):
        ww = analysis.opportunity("s2WE->s2WE")
        wr = analysis.opportunity("s2WE->s2RE")
        sched = Schedule.original(prog)
        cost = evaluate_plan(prog, P, sched, [ww, wr])
        e = prog.arrays["E"].block_bytes
        n1, n2, n3 = P["n1"], P["n2"], P["n3"]
        # All writes but the last per (i, j) are saved.
        assert cost.saved_write_bytes == n1 * n3 * (n2 - 1) * e

    def test_block_bytes_override_scales_costs(self, prog):
        sched = Schedule.original(prog)
        small = evaluate_plan(prog, P, sched, [])
        big = evaluate_plan(prog, P, sched, [],
                            block_bytes={n: a.block_bytes * 10
                                         for n, a in prog.arrays.items()})
        assert big.read_bytes == 10 * small.read_bytes
        assert big.write_bytes == 10 * small.write_bytes
        assert big.memory_bytes == 10 * small.memory_bytes


class TestTrace:
    def test_trace_event_count(self, prog):
        sched = Schedule.original(prog)
        trace = trace_plan(prog, P, sched, [])
        n1, n2, n3 = P["n1"], P["n2"], P["n3"]
        s1_events = n1 * n2 * 3
        s2_events = n1 * n3 * n2 * 3 + n1 * n3 * (n2 - 1)  # E read guarded
        assert len(trace.events) == s1_events + s2_events

    def test_trace_is_time_sorted(self, prog):
        sched = Schedule.original(prog)
        trace = trace_plan(prog, P, sched, [])
        times = [e.time for e in trace.events]
        assert times == sorted(times)
