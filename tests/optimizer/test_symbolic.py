"""Tests for the parametric cost formulas (§5.4 Remark) and report helpers."""

import pytest

from repro.analysis import analyze
from repro.optimizer import (access_count_formula, opportunity_pair_formula,
                             optimize, symbolic_io_report)
from repro.report import plan_space_ascii, plan_space_csv, predicted_vs_actual_csv
from tests.fixtures import example1_program

PARAM_SETS = [{"n1": 1, "n2": 1, "n3": 1},
              {"n1": 3, "n2": 4, "n3": 2},
              {"n1": 2, "n2": 5, "n3": 1}]


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def symbolic_analysis(prog):
    return analyze(prog)  # no bindings: formulas stay parametric


class TestAccessFormulas:
    def test_every_access_has_a_formula(self, prog):
        for stmt in prog.statements:
            for access in stmt.accesses:
                f = access_count_formula(access, prog)
                assert f is not None, repr(access)

    @pytest.mark.parametrize("params", PARAM_SETS)
    def test_formula_equals_domain_count(self, prog, params):
        for stmt in prog.statements:
            for access in stmt.accesses:
                f = access_count_formula(access, prog)
                brute = access.domain().bind(params).count_integer_points()
                assert f.evaluate(params) == brute, repr(access)

    def test_guarded_access_smaller(self, prog):
        s2 = prog.statement("s2")
        e_read = next(a for a in s2.reads if a.array.name == "E")
        e_write = s2.write
        fr = access_count_formula(e_read, prog)
        fw = access_count_formula(e_write, prog)
        params = {"n1": 3, "n2": 4, "n3": 2}
        assert fr.evaluate(params) == fw.evaluate(params) - 3 * 2  # (n2-1) vs n2


class TestOpportunityFormulas:
    @pytest.mark.parametrize("params", PARAM_SETS)
    def test_formulas_match_enumeration(self, symbolic_analysis, prog, params):
        for opp in symbolic_analysis.opportunities:
            f = opportunity_pair_formula(opp, prog)
            if f is None:
                continue  # outside the separable class: enumeration fallback
            assert f.evaluate(params) == len(opp.savings_pairs(params)), opp.label

    def test_some_formulas_exist(self, symbolic_analysis, prog):
        formulas = [opportunity_pair_formula(o, prog)
                    for o in symbolic_analysis.opportunities]
        assert any(f is not None for f in formulas)

    def test_report_renders(self, symbolic_analysis, prog):
        text = symbolic_io_report(prog, symbolic_analysis)
        assert "max(0, n1)" in text
        assert "s1WC" in text


class TestReportHelpers:
    @pytest.fixture(scope="class")
    def result(self, prog):
        return optimize(prog, {"n1": 2, "n2": 2, "n3": 1})

    def test_csv_has_all_plans(self, result):
        csv = plan_space_csv(result)
        assert csv.count("\n") == len(result.plans) + 1
        assert "memory_bytes" in csv

    def test_ascii_marks_best_and_original(self, result):
        art = plan_space_ascii(result)
        assert "*" in art and "0" in art
        assert "legend" in art

    def test_predicted_vs_actual_csv(self):
        csv = predicted_vs_actual_csv([("plan 0", 1.0, 1.0, 0.1)])
        assert "plan 0" in csv and csv.count("\n") == 2

    def test_predicted_vs_actual_csv_durability_columns(self):
        csv = predicted_vs_actual_csv([("plain", 1.0, 1.0, 0.1),
                                       ("faulted", 1.0, 1.2, 0.1, 3, 1)])
        header, plain, faulted = csv.strip().split("\n")
        assert header.endswith("retries,checksum_failures")
        assert plain.endswith(",0,0")       # 4-tuples default the counters
        assert faulted.endswith(",3,1")


def _stub_result(costs):
    """A duck-typed OptimizationResult: plans with fixed (memory, io)."""
    from types import SimpleNamespace
    plans = [SimpleNamespace(index=i, is_original=(i == 0),
                             cost=SimpleNamespace(memory_bytes=m,
                                                  io_seconds=t))
             for i, (m, t) in enumerate(costs)]
    return SimpleNamespace(plans=plans, best=lambda **kw: plans[-1])


class TestPlanSpaceDegenerateAxes:
    def test_single_plan_notes_both_axes(self):
        art = plan_space_ascii(_stub_result([(1 << 20, 2.0)]))
        assert "single plan — both axes degenerate" in art
        assert "*" in art                    # the lone plan still plotted

    def test_equal_memory_notes_memory_axis(self):
        art = plan_space_ascii(_stub_result([(1 << 20, 2.0), (1 << 20, 1.0)]))
        assert "degenerate memory axis" in art
        assert "degenerate I/O axis" not in art

    def test_equal_io_notes_io_axis(self):
        art = plan_space_ascii(_stub_result([(1 << 20, 2.0), (2 << 20, 2.0)]))
        assert "degenerate I/O axis" in art
        assert "degenerate memory axis" not in art

    def test_spread_axes_have_no_notes(self):
        art = plan_space_ascii(_stub_result([(1 << 20, 2.0), (2 << 20, 1.0)]))
        assert "degenerate" not in art
