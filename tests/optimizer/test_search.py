"""Tests for FindSchedule (Algorithm 3), EnumRow (Algorithm 1) and the
Apriori enumeration (Algorithm 2), on the paper's Example 1."""

import pytest

from repro.analysis import analyze
from repro.exceptions import OptimizationError
from repro.ir import lex_less
from repro.optimizer import (ConstraintCache, enum_row, enumerate_feasible_sets,
                             find_schedule, optimize)
from tests.fixtures import example1_program

P = {"n1": 3, "n2": 2, "n3": 1}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def analysis(prog):
    return analyze(prog, param_values=P)


@pytest.fixture(scope="module")
def cache(prog):
    return ConstraintCache(prog)


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


class TestEnumRow:
    def test_forced_independent(self):
        # d~=3, row 1, statement depth 3, no independent rows yet: 3-0 == 3-0
        assert enum_row(3, 1, 3, 0) == [1]

    def test_free_choice_for_shallow_statement(self):
        # depth-2 statement at row 1 of a 3-row schedule has slack
        assert enum_row(3, 1, 2, 0) == [0, 1]

    def test_forced_after_slack_used(self):
        # depth-2 statement at row 2 with 0 independent rows: 3-1 == 2-0
        assert enum_row(3, 2, 2, 0) == [1]

    def test_done_statement_keeps_choice(self):
        # all rows found already: 3-2 = 1 != 0 = 2-2
        assert enum_row(3, 3, 2, 2) == [0, 1]


class TestFindSchedule:
    def test_empty_set_finds_schedule(self, prog, cache, analysis):
        sched = find_schedule(prog, cache, [], analysis.dependences)
        assert sched is not None

    def test_paper_plan7_set_feasible(self, prog, cache, analysis):
        opps = [analysis.opportunity("s1WC->s2RC"),
                analysis.opportunity("s2WE->s2RE"),
                analysis.opportunity("s2WE->s2WE")]
        sched = find_schedule(prog, cache, opps, analysis.dependences)
        assert sched is not None

    def test_conflicting_set_infeasible(self, prog, cache, analysis):
        """E-pinning needs k innermost; D-sharing needs i innermost."""
        opps = [analysis.opportunity("s2WE->s2RE"),
                analysis.opportunity("s2RD->s2RD")]
        assert find_schedule(prog, cache, opps, analysis.dependences) is None

    def test_schedules_are_legal(self, prog, analysis, result):
        """Every dependence pair executes in order under every plan."""
        for plan in result.plans:
            for dep in analysis.dependences:
                src_s = dep.co.src.statement
                tgt_s = dep.co.tgt.statement
                for (ps, pt) in dep.co.pairs(P):
                    ts = plan.schedule.time_vector(src_s, ps, P)
                    tt = plan.schedule.time_vector(tgt_s, pt, P)
                    assert lex_less(ts, tt), (
                        f"plan {plan.index} violates {dep.label} at {ps}->{pt}")

    def test_realized_pairs_are_adjacent(self, prog, result):
        """Table 1 semantics: realized non-self pairs differ only in the
        constant dimension; self pairs are consecutive at the last depth."""
        for plan in result.plans:
            for opp in plan.realized:
                src_s, tgt_s = opp.co.src.statement, opp.co.tgt.statement
                for (ps, pt) in opp.co.pairs(P):
                    ts = plan.schedule.time_vector(src_s, ps, P)
                    tt = plan.schedule.time_vector(tgt_s, pt, P)
                    if opp.is_self:
                        assert ts[:-2] == tt[:-2]
                        assert abs(ts[-2] - tt[-2]) == 1
                    else:
                        assert ts[:-1] == tt[:-1]
                        assert ts[-1] != tt[-1]


class TestApriori:
    def test_plan_count_example1(self, result):
        """Paper Section 6.1 reports 8 legal plans; our search finds the same
        sharing-opportunity lattice plus two extra feasible combinations
        (documented in EXPERIMENTS.md)."""
        assert len(result.plans) == 10

    def test_empty_set_is_plan0(self, result):
        assert result.plans[0].is_original

    def test_apriori_downward_closure(self, prog, analysis, cache):
        """Every subset of a feasible set is feasible (Lemma 2 sanity)."""
        feasible, _ = enumerate_feasible_sets(analysis, cache)
        keys = {k for k, _ in feasible}
        for k in keys:
            for drop in k:
                assert (k - {drop}) in keys

    def test_stats_accounting(self, prog, analysis, cache):
        feasible, stats = enumerate_feasible_sets(analysis, cache)
        assert stats.feasible == len(feasible) - 1  # minus the empty set
        assert stats.candidates_tested <= stats.total_subsets
        assert 0.0 <= stats.pruned_fraction <= 1.0

    def test_max_set_size_truncates(self, prog, analysis, cache):
        feasible, stats = enumerate_feasible_sets(
            analysis, cache, max_set_size=1, include_greedy_maximal=False)
        assert all(len(k) <= 1 for k, _ in feasible)

    def test_truncation_adds_greedy_maximal(self, prog, analysis, cache):
        feasible, stats = enumerate_feasible_sets(
            analysis, cache, max_set_size=1, include_greedy_maximal=True)
        assert stats.truncated
        sizes = sorted(len(k) for k, _ in feasible)
        assert sizes[-1] > 1  # the greedily grown maximal set

    def test_budget_truncation(self, prog, analysis, cache):
        feasible, stats = enumerate_feasible_sets(
            analysis, cache, max_candidates=5, include_greedy_maximal=False)
        assert stats.candidates_tested <= 5 or stats.truncated


class TestBudgetAccounting:
    """Regression tests for the budget bugs: level 1 ignored
    ``max_candidates`` entirely, and a budget exhausted exactly at a level
    boundary exited without setting ``stats.truncated`` (silently skipping
    the greedy-maximal fallback)."""

    def test_level1_respects_budget(self, prog, analysis, cache):
        feasible, stats = enumerate_feasible_sets(
            analysis, cache, max_candidates=2, include_greedy_maximal=False)
        assert stats.candidates_tested == 2
        assert stats.truncated
        assert all(len(k) <= 1 for k, _ in feasible)

    def test_boundary_exhaustion_marks_truncated(self, prog, analysis, cache):
        """Example 1 has 4 usable opportunities, all feasible as singletons,
        and 6 level-2 candidates.  A budget of exactly 4 runs dry at the
        level boundary: level 2 was never entered, so the search IS
        truncated even though no mid-level break happened."""
        feasible, stats = enumerate_feasible_sets(
            analysis, cache, max_candidates=4, include_greedy_maximal=False)
        assert stats.candidates_tested == 4
        assert stats.truncated
        assert all(len(k) <= 1 for k, _ in feasible)

    def test_boundary_exhaustion_adds_greedy_fallback(self, prog, analysis,
                                                      cache):
        """The truncated flag is what gates the greedy-maximal completion;
        the boundary bug therefore silently dropped that plan."""
        feasible, stats = enumerate_feasible_sets(
            analysis, cache, max_candidates=4, include_greedy_maximal=True)
        assert stats.truncated
        assert max(len(k) for k, _ in feasible) > 1  # the grown maximal set

    def test_untruncated_run_stays_untruncated(self, prog, analysis, cache):
        feasible, stats = enumerate_feasible_sets(
            analysis, cache, max_candidates=10_000,
            include_greedy_maximal=True)
        assert not stats.truncated
        assert len(feasible) == 10  # the full Example-1 plan space


class TestSelection:
    def test_best_is_min_io(self, result):
        best = result.best()
        assert all(best.cost.io_seconds <= p.cost.io_seconds for p in result.plans)

    def test_best_respects_memory_cap(self, result):
        lows = sorted({p.cost.memory_bytes for p in result.plans})
        cap = lows[0]  # only the smallest-footprint plans fit
        best = result.best(memory_cap_bytes=cap)
        assert best.cost.memory_bytes <= cap

    def test_impossible_cap_raises(self, result):
        with pytest.raises(OptimizationError):
            result.best(memory_cap_bytes=1)

    def test_plan_for_lookup(self, result):
        plan = result.plan_for(["s1WC->s2RC"])
        assert plan.realized_labels == ["s1WC->s2RC"]
        with pytest.raises(OptimizationError):
            result.plan_for(["bogus"])

    def test_best_plan_is_papers(self, result):
        assert set(result.best().realized_labels) == {
            "s1WC->s2RC", "s2WE->s2RE", "s2WE->s2WE"}
