"""Tests for plan narration (describe_plan / per_array_io)."""

import pytest

from repro.optimizer import describe_plan, optimize, per_array_io
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


class TestPerArrayIO:
    def test_plan0_counts(self, prog, result):
        stats = per_array_io(prog, P, result.original_plan)
        n1, n2, n3 = P["n1"], P["n2"], P["n3"]
        assert stats["A"] == {"reads": n1 * n2, "reads_saved": 0, "writes": 0,
                              "writes_saved": 0, "writes_elided": 0}
        assert stats["C"]["writes"] == n1 * n2
        assert stats["C"]["reads"] == n1 * n2 * n3
        assert stats["E"]["writes"] == n1 * n3 * n2
        assert stats["E"]["reads"] == n1 * n3 * (n2 - 1)

    def test_best_plan_pipelines_c(self, prog, result):
        stats = per_array_io(prog, P, result.best())
        # C fully pipelined when n3 = 1: no disk traffic at all.
        assert stats["C"]["reads"] == 0
        assert stats["C"]["writes"] == 0
        assert stats["C"]["writes_elided"] == P["n1"] * P["n2"]
        assert stats["C"]["reads_saved"] == P["n1"] * P["n2"]

    def test_best_plan_e_written_once_per_block(self, prog, result):
        stats = per_array_io(prog, P, result.best())
        assert stats["E"]["writes"] == P["n1"] * P["n3"]  # final value only
        assert stats["E"]["reads"] == 0

    def test_totals_reconcile_with_cost(self, prog, result):
        for plan in result.plans:
            stats = per_array_io(prog, P, plan)
            read_bytes = sum(s["reads"] * prog.arrays[n].block_bytes
                             for n, s in stats.items())
            write_bytes = sum(s["writes"] * prog.arrays[n].block_bytes
                              for n, s in stats.items())
            assert read_bytes == plan.cost.read_bytes
            assert write_bytes == plan.cost.write_bytes


class TestDescribe:
    def test_narration_mentions_pipelining(self, prog, result):
        text = describe_plan(prog, P, result.best())
        assert "elided (fully pipelined)" in text
        assert "served from memory" in text
        assert "realizes:" in text

    def test_original_plan_marked(self, prog, result):
        text = describe_plan(prog, P, result.original_plan)
        assert "original program order" in text
        assert "realizes:" not in text
