"""Tests for the process-pool search layer (repro.optimizer.parallel) and
the ConstraintCache worker-cache protocol it relies on."""

import pickle

import pytest

from repro.analysis import analyze
from repro.exceptions import OptimizationError
from repro.optimizer import ConstraintCache, find_schedule, optimize
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def analysis(prog):
    return analyze(prog, param_values=P)


@pytest.fixture(scope="module")
def seq_result(prog):
    return optimize(prog, P, workers=1)


@pytest.fixture(scope="module")
def par_result(prog):
    return optimize(prog, P, workers=2)


def plan_signature(result):
    return [(tuple(p.realized_labels), p.cost.io_seconds,
             p.cost.memory_bytes) for p in result.plans]


class TestParallelEquivalence:
    def test_same_plans_same_order(self, seq_result, par_result):
        """workers=N must return bit-identical plan sets: same realized
        labels, same costs, same indices, in the same order."""
        assert plan_signature(seq_result) == plan_signature(par_result)
        assert [p.index for p in seq_result.plans] == \
            [p.index for p in par_result.plans]

    def test_same_best_plan(self, seq_result, par_result):
        assert seq_result.best().realized_labels == \
            par_result.best().realized_labels
        assert seq_result.best().index == par_result.best().index

    def test_same_search_stats(self, seq_result, par_result):
        s1, s2 = seq_result.stats, par_result.stats
        assert s1.candidates_tested == s2.candidates_tested
        assert s1.feasible == s2.feasible
        assert s1.truncated == s2.truncated
        assert s1.level_candidates == s2.level_candidates
        assert s1.level_feasible == s2.level_feasible

    def test_worker_utilization_observable(self, par_result):
        s = par_result.stats
        assert s.workers == 2
        assert s.tasks_dispatched >= 1
        assert sum(s.worker_tasks.values()) == s.tasks_dispatched
        assert s.level_seconds  # per-level timing recorded

    def test_sequential_stats_have_levels_too(self, seq_result):
        s = seq_result.stats
        assert s.workers == 1
        assert s.level_candidates and s.level_seconds
        assert sum(s.level_candidates.values()) >= s.candidates_tested - 1

    def test_bad_worker_count_rejected(self, prog):
        with pytest.raises(OptimizationError):
            optimize(prog, P, workers=0)


class TestConstraintCacheMerge:
    """Guards the worker-cache protocol: disjoint caches merge into exactly
    the sequential cache, and entries survive pickling."""

    def test_disjoint_merge_equals_sequential(self, prog, analysis):
        usable = [o for o in analysis.opportunities if o.reduced]
        assert len(usable) >= 2
        half = len(usable) // 2
        # Two "workers", each testing a disjoint candidate set.
        a, b = ConstraintCache(prog), ConstraintCache(prog)
        for o in usable[:half]:
            find_schedule(prog, a, [o], analysis.dependences)
        for o in usable[half:]:
            find_schedule(prog, b, [o], analysis.dependences)
        # One sequential run over all candidates.
        seq = ConstraintCache(prog)
        for o in usable:
            find_schedule(prog, seq, [o], analysis.dependences)
        merged = ConstraintCache(prog)
        merged.merge(a.export())
        merged.merge(b.export())
        assert set(merged.keys()) == set(seq.keys())
        for key in seq.keys():
            ours, theirs = merged._cache[key], seq._cache[key]
            if theirs is None:
                assert ours is None
            elif hasattr(theirs, "eqs"):  # polyhedron entry
                assert ours.eqs == theirs.eqs and ours.ineqs == theirs.ineqs
            else:  # witness-point entry (tuple of ints)
                assert ours == theirs

    def test_merge_does_not_overwrite(self, prog, analysis):
        usable = [o for o in analysis.opportunities if o.reduced]
        a = ConstraintCache(prog)
        find_schedule(prog, a, [usable[0]], analysis.dependences)
        before = dict(a._cache)
        added = a.merge(a.export())  # self-merge must be a no-op
        assert added == 0
        assert {k: id(v) for k, v in a._cache.items()} == \
            {k: id(v) for k, v in before.items()}

    def test_entries_pickle_round_trip(self, prog, analysis):
        usable = [o for o in analysis.opportunities if o.reduced]
        a = ConstraintCache(prog)
        find_schedule(prog, a, usable[:1], analysis.dependences)
        assert len(a) > 0
        entries = pickle.loads(pickle.dumps(a.export()))
        assert set(entries) == set(a.keys())
        fresh = ConstraintCache(prog)
        assert fresh.merge(entries) == len(entries)
        # A warm-started cache answers without recomputation and the result
        # matches the original worker's polyhedra.
        for key, value in entries.items():
            got = fresh.memo(key, lambda: pytest.fail("memo miss after merge"))
            if value is None:
                assert got is None
            elif hasattr(value, "eqs"):  # polyhedron entry
                assert got.eqs == value.eqs and got.ineqs == value.ineqs
            else:  # witness-point entry (tuple of ints)
                assert got == value

    def test_delta_journal(self, prog, analysis):
        usable = [o for o in analysis.opportunities if o.reduced]
        cache = ConstraintCache(prog)
        find_schedule(prog, cache, [usable[0]], analysis.dependences)
        cache.begin_delta()
        assert cache.collect_delta() == {}
        find_schedule(prog, cache, [usable[1]], analysis.dependences)
        delta = cache.collect_delta()
        assert delta  # the new candidate computed something new
        assert all(k in cache for k in delta)
        # Deltas merged elsewhere reproduce exactly those entries.
        other = ConstraintCache(prog)
        assert other.merge(delta) == len(delta)
