"""Golden-plan regression corpus (tests/fixtures/golden_plans/).

Each JSON fixture pins an exhaustive optimization of one workload at small
parameter sizes: every plan's realized labels and costs, the best plan, and
the search counters.  The tests replay the same cases and compare
field-for-field, so *any* behavior change in analysis, legality testing,
costing or search order — intended or not — fails here first.

To regenerate after a deliberate change::

    PYTHONPATH=src:. python tests/fixtures/golden_plans/regenerate.py

and justify the fixture diff in the commit message.
"""

import importlib.util
import json
import pathlib

import pytest

from repro import optimize

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "fixtures" / "golden_plans"

_spec = importlib.util.spec_from_file_location(
    "golden_regenerate", GOLDEN_DIR / "regenerate.py")
_regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_regen)

# Heavier cases ride the nightly lane; the fast trio keeps every push
# covered by at least one workload per program family.
CASE_PARAMS = [
    pytest.param("example1"),
    pytest.param("add_multiply"),
    pytest.param("two_matmul_B"),
    pytest.param("two_matmul_A", marks=pytest.mark.slow),
    pytest.param("linreg", marks=pytest.mark.slow),
]


def load_golden(name: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


def plan_key(record: dict) -> tuple:
    return (tuple(record["labels"]), record["io_seconds"],
            record["read_bytes"], record["write_bytes"],
            record["memory_bytes"])


def live_key(plan) -> tuple:
    return plan_key(_regen.plan_record(plan))


@pytest.mark.parametrize("name", CASE_PARAMS)
def test_pruned_search_matches_golden(name):
    """The default regression check: a bound-pruned replay must choose the
    golden best plan bit-for-bit, and every plan it does cost must appear in
    the golden (exhaustive) plan list with identical cost."""
    golden = load_golden(name)
    program, params, knobs = _regen.build_case(name)
    result = optimize(program, params, prune=True, **knobs)

    assert live_key(result.best()) == plan_key(golden["best"])
    golden_plans = {plan_key(p) for p in golden["plans"]}
    for plan in result.plans:
        assert live_key(plan) in golden_plans, (
            f"{name}: pruned search produced a plan the exhaustive golden "
            f"run never saw: {plan.summary()}")
    # Pruning skips costing, never legality: identical lattice coverage.
    assert result.stats.feasible == golden["stats"]["feasible"]
    assert result.stats.candidates_tested <= golden["stats"]["candidates_tested"]


@pytest.mark.parametrize("name", [p for p in CASE_PARAMS
                                  if p.values[0] in ("example1", "add_multiply")])
def test_exhaustive_search_matches_golden(name):
    """Full-list lock on the fast cases: the exhaustive plan list must match
    the fixture plan-for-plan, in order."""
    golden = load_golden(name)
    program, params, knobs = _regen.build_case(name)
    result = optimize(program, params, **knobs)

    assert len(result.plans) == golden["n_plans"]
    for plan, expected in zip(result.plans, golden["plans"]):
        assert live_key(plan) == plan_key(expected)
    assert live_key(result.best()) == plan_key(golden["best"])
    assert result.stats.candidates_tested == golden["stats"]["candidates_tested"]
    assert result.stats.feasible == golden["stats"]["feasible"]


def test_corpus_is_complete():
    """Every registered case has a fixture and vice versa."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(_regen.CASES)
