"""Differential testing of the search execution layers.

Random static-control programs (the same generator the analysis fuzzers
use) are optimized three ways — exhaustive sequential, bound-pruned
sequential, and bound-pruned over a 2-worker process pool — and the chosen
plan and its cost must agree bit-for-bit.  A second property checks the
pruning's soundness directly: the static I/O lower bound recorded for a
candidate set never exceeds the true cost of any plan realizing it, and the
global bound never exceeds the true optimum.
"""

import pytest

from repro import optimize
from repro.optimizer.costing import (elidable_write_bytes, io_lower_bound,
                                     opportunity_savings_seconds_bound)
from repro.workloads.generator import random_program

PARAMS = {"n": 3}
SEEDS = list(range(10))
# A couple of seeds produce single-statement-family programs with no
# feasible sharing at all; they still must agree (on the original plan).


def best_fingerprint(result):
    b = result.best()
    return (sorted(b.realized_labels), b.cost.io_seconds, b.cost.read_bytes,
            b.cost.write_bytes, b.cost.memory_bytes)


@pytest.mark.parametrize("seed", SEEDS)
def test_pruned_equals_exhaustive(seed):
    program = random_program(seed, n_statements=3)
    exhaustive = optimize(program, PARAMS)
    pruned = optimize(program, PARAMS, prune=True)

    assert best_fingerprint(pruned) == best_fingerprint(exhaustive)
    # Pruning skips costing only — the feasibility lattice is identical.
    assert pruned.stats.feasible == exhaustive.stats.feasible
    assert pruned.stats.candidates_tested <= exhaustive.stats.candidates_tested
    # Every pruned plan is an exhaustive plan with an identical cost.
    exhaustive_keys = {
        (tuple(sorted(p.realized_labels)), p.cost.io_seconds,
         p.cost.memory_bytes) for p in exhaustive.plans}
    for p in pruned.plans:
        key = (tuple(sorted(p.realized_labels)), p.cost.io_seconds,
               p.cost.memory_bytes)
        assert key in exhaustive_keys


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_parallel_pruned_equals_exhaustive(seed):
    program = random_program(seed, n_statements=3)
    exhaustive = optimize(program, PARAMS)
    parallel = optimize(program, PARAMS, prune=True, workers=2)

    assert best_fingerprint(parallel) == best_fingerprint(exhaustive)
    assert parallel.stats.feasible == exhaustive.stats.feasible


@pytest.mark.parametrize("seed", SEEDS)
def test_lower_bounds_never_exceed_true_costs(seed):
    """Soundness of the pruning bounds, checked against ground truth.

    For every plan the exhaustive search costed, the static lower bound of
    its realized set must not exceed its true I/O time — in particular the
    recorded global bound (all usable opportunities) never exceeds the true
    optimum, so a bound-triggered early exit can never hide a better plan.
    """
    program = random_program(seed, n_statements=3)
    result = optimize(program, PARAMS)
    p0 = result.original_plan
    base_reads = p0.cost.baseline_read_bytes
    base_writes = p0.cost.baseline_write_bytes
    model = result.io_model
    savings_ub = {
        o.index: opportunity_savings_seconds_bound(o, PARAMS, model)
        for o in result.analysis.opportunities if o.reduced}
    elidable = elidable_write_bytes(program, PARAMS)

    for plan in result.plans:
        lb = io_lower_bound(
            base_reads, base_writes,
            sum(savings_ub[o.index] for o in plan.realized),
            elidable, model)
        assert plan.cost.io_seconds >= lb - 1e-9, (
            f"seed {seed}: plan {plan.index} costs {plan.cost.io_seconds} "
            f"below its static lower bound {lb}")

    global_lb = io_lower_bound(base_reads, base_writes,
                               sum(savings_ub.values()), elidable, model)
    assert result.best().cost.io_seconds >= global_lb - 1e-9

    # The pruned run records exactly this global bound in its stats.
    pruned = optimize(program, PARAMS, prune=True)
    assert pruned.stats.io_lower_bound == pytest.approx(global_lb)


def test_pruned_respects_memory_cap():
    """The incumbent is the best *fitting* plan: with a cap, pruned and
    exhaustive still choose the same plan for that cap."""
    program = random_program(9, n_statements=3)
    exhaustive = optimize(program, PARAMS)
    # A cap between min and max memory forces the incumbent logic to skip
    # over cheaper-but-too-big plans.
    sizes = sorted({p.cost.memory_bytes for p in exhaustive.plans})
    if len(sizes) < 2:
        pytest.skip("program has a single memory footprint")
    cap = sizes[len(sizes) // 2]
    pruned = optimize(program, PARAMS, prune=True, memory_cap_bytes=cap)
    assert (pruned.best(cap).realized_labels ==
            exhaustive.best(cap).realized_labels)
    assert (pruned.best(cap).cost.io_seconds ==
            exhaustive.best(cap).cost.io_seconds)
