"""Unit tests for Polyhedron: feasibility, projection, enumeration, lexmin."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyPolyhedronError, PolyhedralError
from repro.polyhedral import Polyhedron, Space


def box2(xlo, xhi, ylo, yhi):
    return Polyhedron.box(Space(["x", "y"]), {"x": (xlo, xhi), "y": (ylo, yhi)})


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(PolyhedralError):
            Space(["x", "x"])

    def test_bad_row_width(self):
        with pytest.raises(PolyhedralError):
            Polyhedron(Space(["x"]), ineqs=[[1, 2, 3]])

    def test_constant_contradiction_detected(self):
        # 0*x - 1 >= 0 is trivially empty
        p = Polyhedron(Space(["x"]), ineqs=[[0, -1]])
        assert p.is_empty()

    def test_gcd_integrality_on_equalities(self):
        # 2x = 1 has no integer solution
        p = Polyhedron(Space(["x"]), eqs=[[2, -1]])
        assert p.is_empty()
        assert not p.is_rational_empty() or p._trivially_empty

    def test_gcd_tightening_on_inequalities(self):
        # 2x >= 1 tightens to x >= 1
        p = Polyhedron(Space(["x"]), ineqs=[[2, -1]])
        assert (1, -1) in p.ineqs

    def test_universe_and_empty(self):
        s = Space(["x"])
        assert not Polyhedron.universe(s).is_empty()
        assert Polyhedron.empty(s).is_empty()

    def test_from_terms(self):
        s = Space(["i", "j"])
        p = Polyhedron.from_terms(s, ineq_terms=[({"i": 1}, 0), ({"i": -1, "j": 1}, 0)])
        assert p.contains_point([0, 0])
        assert p.contains_point([2, 5])
        assert not p.contains_point([3, 1])


class TestFeasibility:
    def test_box_nonempty(self):
        assert not box2(0, 3, 0, 3).is_empty()

    def test_box_empty(self):
        assert box2(2, 1, 0, 3).is_empty()

    def test_integer_gap(self):
        # 1 <= 2x <= 1 means x = 1/2: rational point exists, integer doesn't
        p = Polyhedron(Space(["x"]), eqs=[[2, -1]])
        assert p.is_empty()

    def test_branch_and_bound_finds_point(self):
        # x + y = 5, 0 <= x <= 5 (fractional LP vertex possible)
        p = Polyhedron(Space(["x", "y"]),
                       eqs=[[1, 1, -5]],
                       ineqs=[[1, 0, 0], [-1, 0, 5], [3, -2, -1]])
        pt = p.find_integer_point()
        assert pt is not None
        x, y = pt
        assert x + y == 5 and 0 <= x <= 5 and 3 * x - 2 * y >= 1

    def test_sample_from_empty_raises(self):
        with pytest.raises(EmptyPolyhedronError):
            box2(2, 1, 0, 0).sample_rational_point()


class TestBoundsAndEnumeration:
    def test_var_bounds(self):
        p = box2(1, 4, -2, 2)
        assert p.var_bounds("x") == (1, 4)
        assert p.var_bounds("y") == (-2, 2)

    def test_var_bounds_unbounded(self):
        p = Polyhedron(Space(["x"]), ineqs=[[1, 0]])  # x >= 0
        assert p.var_bounds("x") == (0, None)

    def test_integer_points_box(self):
        pts = box2(0, 2, 0, 1).integer_points()
        assert len(pts) == 6
        assert (0, 0) in pts and (2, 1) in pts

    def test_integer_points_with_equality(self):
        # diagonal of a box
        p = box2(0, 3, 0, 3).add_constraints(eqs=[[1, -1, 0]])
        assert p.integer_points() == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_triangle_count(self):
        # 0 <= x, 0 <= y, x + y <= 3: C(5,2) = 10 points
        p = Polyhedron(Space(["x", "y"]),
                       ineqs=[[1, 0, 0], [0, 1, 0], [-1, -1, 3]])
        assert p.count_integer_points() == 10

    def test_lexmin_lexmax(self):
        p = box2(1, 3, 5, 9)
        assert p.lexmin() == (1, 5)
        assert p.lexmax() == (3, 9)

    def test_lexmin_with_coupling(self):
        # x in [0,3], y = 3 - x; lexmin favours x first
        p = box2(0, 3, 0, 3).add_constraints(eqs=[[1, 1, -3]])
        assert p.lexmin() == (0, 3)
        assert p.lexmax() == (3, 0)

    def test_lexmin_empty(self):
        assert box2(3, 1, 0, 0).lexmin() is None

    def test_lexmin_skips_rational_only_values(self):
        # 2x = y, 1 <= y <= 5, x integer => x in {1, 2}, lexmin x = 1
        p = Polyhedron(Space(["x", "y"]),
                       eqs=[[2, -1, 0]],
                       ineqs=[[0, 1, -1], [0, -1, 5]])
        assert p.lexmin() == (1, 2)


class TestProjection:
    def test_project_box(self):
        p = box2(0, 4, 1, 2)
        shadow, exact = p.project_out(["y"])
        assert exact
        assert shadow.space == Space(["x"])
        assert sorted(pt[0] for pt in shadow.integer_points()) == [0, 1, 2, 3, 4]

    def test_project_with_equality_substitution(self):
        # y = x + 1, 0 <= y <= 3  => 0 <= x+1 <= 3 => -1 <= x <= 2
        p = Polyhedron(Space(["x", "y"]),
                       eqs=[[1, -1, 1]],
                       ineqs=[[0, 1, 0], [0, -1, 3]])
        shadow, exact = p.project_out(["y"])
        assert exact
        assert shadow.var_bounds("x") == (-1, 2)

    def test_projection_couples_constraints(self):
        # x <= y <= x + 1, 0 <= y <= 10 : projecting y gives -1 <= x <= 10
        p = Polyhedron(Space(["x", "y"]),
                       ineqs=[[-1, 1, 0], [1, -1, 1], [0, 1, 0], [0, -1, 10]])
        shadow, exact = p.project_out(["y"])
        assert exact
        assert shadow.var_bounds("x") == (-1, 10)

    def test_inexact_flag_on_non_unit_coefficient(self):
        # Eliminating y from 2y >= x, 2y <= x + 1 loses integer info
        p = Polyhedron(Space(["x", "y"]), ineqs=[[-1, 2, 0], [1, -2, 1]])
        _, exact = p.project_out(["y"])
        assert not exact


class TestTransforms:
    def test_rename(self):
        p = box2(0, 1, 0, 1).rename({"x": "a"})
        assert p.space == Space(["a", "y"])
        assert p.contains_point([1, 1])

    def test_align_permutes(self):
        p = Polyhedron.box(Space(["x"]), {"x": (2, 5)})
        q = p.align(Space(["w", "x"]))
        assert q.var_bounds("x") == (2, 5)
        assert q.var_bounds("w") == (None, None)

    def test_product(self):
        a = Polyhedron.box(Space(["x"]), {"x": (0, 1)})
        b = Polyhedron.box(Space(["y"]), {"y": (5, 6)})
        prod = a.product(b)
        assert prod.count_integer_points() == 4

    def test_bind(self):
        s = Space(["i", "n"])
        p = Polyhedron.from_terms(s, ineq_terms=[({"i": 1}, 0), ({"i": -1, "n": 1}, -1)])
        q = p.bind({"n": 4})
        assert q.space == Space(["i"])
        assert q.var_bounds("i") == (0, 3)


class TestSimplification:
    def test_remove_redundancy(self):
        p = Polyhedron(Space(["x"]), ineqs=[[1, 0], [1, 5], [-1, 10]])  # x>=0, x>=-5, x<=10
        r = p.remove_redundancy()
        assert len(r.ineqs) == 2
        assert r.var_bounds("x") == (0, 10)

    def test_affine_hull_detects_implicit_equality(self):
        # x >= 3 and x <= 3
        p = Polyhedron(Space(["x", "y"]), ineqs=[[1, 0, -3], [-1, 0, 3], [0, 1, 0]])
        hull = p.affine_hull_eqs()
        assert any(row[:2] == (1, 0) or row[:2] == (-1, 0) for row in hull)

    def test_subset(self):
        small = box2(1, 2, 1, 2)
        big = box2(0, 3, 0, 3)
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_equality_of_different_representations(self):
        a = Polyhedron(Space(["x"]), ineqs=[[1, 0], [-1, 3], [2, 1]])
        b = Polyhedron(Space(["x"]), ineqs=[[1, 0], [-1, 3]])
        assert a == b


@settings(max_examples=40, deadline=None)
@given(st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))
def test_enumeration_matches_brute_force(xlo, xhi, ylo, yhi):
    p = box2(xlo, xhi, ylo, yhi).add_constraints(ineqs=[[1, 1, 0]])  # x + y >= 0
    expected = {(x, y)
                for x in range(xlo, xhi + 1)
                for y in range(ylo, yhi + 1)
                if x + y >= 0}
    assert set(p.integer_points()) == expected
    assert p.is_empty() == (not expected)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 6), st.integers(0, 6))
def test_projection_shadow_is_exact_on_boxes(w, h):
    p = box2(0, w, 0, h)
    shadow, exact = p.project_out(["y"])
    assert exact
    assert set(shadow.integer_points()) == {(x,) for x in range(0, w + 1)}
