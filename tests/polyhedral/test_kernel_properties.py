"""Property-based differential tests for the rational fast-path kernels.

The simplex tableau has two arithmetic backends: vectorized numpy int64 rows
(with an exact overflow guard) and pure Python big-int rows.  The former is
a pure optimization — these tests generate random LPs and normalization
inputs and require the two backends to agree bit-for-bit, including on
inputs crafted to trip the int64 overflow guard mid-pivot.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral import simplex
from repro.polyhedral.matrix import (normalize_integer_row,
                                     normalize_integer_row_exact)
from repro.polyhedral.simplex import KERNEL_STATS, LPStatus, set_fast_path, solve_lp


@pytest.fixture
def fast_path_restored():
    previous = set_fast_path(True)
    yield
    set_fast_path(previous)


def solve_both_ways(eqs, ineqs, nvars, objective, maximize=False):
    set_fast_path(True)
    fast = solve_lp(eqs, ineqs, nvars, objective, maximize=maximize)
    set_fast_path(False)
    slow = solve_lp(eqs, ineqs, nvars, objective, maximize=maximize)
    set_fast_path(True)
    return fast, slow


def assert_identical(fast, slow):
    assert fast.status is slow.status
    assert fast.value == slow.value
    assert fast.point == slow.point


coeff = st.integers(min_value=-9, max_value=9)


@st.composite
def random_lp(draw):
    nvars = draw(st.integers(min_value=1, max_value=4))
    row = st.lists(coeff, min_size=nvars + 1, max_size=nvars + 1)
    eqs = draw(st.lists(row, min_size=0, max_size=2))
    ineqs = draw(st.lists(row, min_size=0, max_size=4))
    objective = draw(st.one_of(
        st.none(), st.lists(coeff, min_size=nvars, max_size=nvars)))
    maximize = draw(st.booleans())
    return eqs, ineqs, nvars, objective, maximize


@settings(max_examples=80, deadline=None)
@given(random_lp())
def test_fast_and_exact_backends_agree(lp):
    eqs, ineqs, nvars, objective, maximize = lp
    fast, slow = solve_both_ways(eqs, ineqs, nvars, objective, maximize)
    assert_identical(fast, slow)


@settings(max_examples=80, deadline=None)
@given(random_lp())
def test_fractional_inputs_agree(lp):
    """Rows with non-integer entries take the Fraction standard-form path;
    both backends must still agree."""
    eqs, ineqs, nvars, objective, maximize = lp
    third = Fraction(1, 3)
    eqs = [[v * third for v in r] for r in eqs]
    ineqs = [[v + third for v in r] for r in ineqs]
    fast, slow = solve_both_ways(eqs, ineqs, nvars, objective, maximize)
    assert_identical(fast, slow)


rational = st.fractions(
    min_value=Fraction(-50), max_value=Fraction(50), max_denominator=12)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.one_of(st.integers(min_value=-10 ** 12, max_value=10 ** 12),
                          rational),
                min_size=1, max_size=8))
def test_normalize_integer_row_matches_exact(row):
    assert normalize_integer_row(row) == normalize_integer_row_exact(row)


def test_normalize_pure_int_rows_skip_fraction_path():
    assert normalize_integer_row([4, -6, 8]) == (2, -3, 4)
    assert normalize_integer_row([0, 0]) == (0, 0)
    assert normalize_integer_row((3,)) == (1,)
    # Mixed input routes through the exact path with the same result.
    assert normalize_integer_row([Fraction(4), -6]) == (2, -3)


def make_wide_lp(magnitude, nvars=8, seed=7):
    """A bounded maximization LP wide enough for numpy rows (>= 12 tableau
    columns) with coefficients of the requested magnitude: every variable
    gets an upper bound, plus dense rows that keep the origin feasible."""
    rng = random.Random(seed)
    ineqs = []
    for i in range(nvars):
        row = [0] * (nvars + 1)
        row[i] = -1
        row[-1] = rng.randrange(1, magnitude + 1)  # x_i <= bound
        ineqs.append(row)
    for _ in range(4):
        row = [rng.randrange(-magnitude, magnitude) for _ in range(nvars)]
        row.append(abs(rng.randrange(magnitude)) + magnitude)
        ineqs.append(row)
    objective = [rng.randrange(1, magnitude) for _ in range(nvars)]
    return [], ineqs, nvars, objective


def test_fast_path_engages_on_wide_problems(fast_path_restored):
    eqs, ineqs, nvars, objective = make_wide_lp(9)
    before = KERNEL_STATS["numpy_rows"]
    set_fast_path(True)
    result = solve_lp(eqs, ineqs, nvars, objective, maximize=True)
    assert result.status is LPStatus.OPTIMAL
    assert KERNEL_STATS["numpy_rows"] > before


def test_overflow_falls_back_to_exact_arithmetic(fast_path_restored):
    """Coefficients near the int64 guard force mid-pivot products past
    2**63: the kernel must detect it, fall back to big-int rows, and still
    produce the exact backend's answer."""
    eqs, ineqs, nvars, objective = make_wide_lp(1 << 40)
    before = KERNEL_STATS["overflow_fallbacks"]
    fast, slow = solve_both_ways(eqs, ineqs, nvars, objective, maximize=True)
    assert KERNEL_STATS["overflow_fallbacks"] > before, (
        "expected at least one int64-overflow fallback on 2**40-magnitude "
        "coefficients")
    assert_identical(fast, slow)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_overflow_boundary_magnitudes_agree(seed):
    """Randomized magnitudes straddling the guard: results must never
    depend on which side of the overflow bound the arithmetic landed."""
    rng = random.Random(seed)
    magnitude = 1 << rng.randrange(30, 50)
    eqs, ineqs, nvars, objective = make_wide_lp(magnitude, seed=seed)
    fast, slow = solve_both_ways(eqs, ineqs, nvars, objective, maximize=True)
    assert_identical(fast, slow)
