"""Unit tests for PolyhedralSet: unions, subtraction, projection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral import Polyhedron, PolyhedralSet, Space

S2 = Space(["x", "y"])


def box(xlo, xhi, ylo, yhi):
    return Polyhedron.box(S2, {"x": (xlo, xhi), "y": (ylo, yhi)})


def pset(*polys):
    return PolyhedralSet(S2, polys)


class TestBasics:
    def test_empty_set(self):
        assert PolyhedralSet.empty(S2).is_empty()

    def test_empty_disjuncts_dropped(self):
        s = pset(box(3, 1, 0, 0), box(0, 1, 0, 1))
        assert len(s) == 1

    def test_union(self):
        s = pset(box(0, 1, 0, 1)).union(pset(box(5, 6, 5, 6)))
        assert s.count_integer_points() == 8

    def test_union_dedups_points(self):
        s = pset(box(0, 2, 0, 0)).union(pset(box(1, 3, 0, 0)))
        assert s.count_integer_points() == 4  # x in 0..3

    def test_contains_point(self):
        s = pset(box(0, 1, 0, 1), box(4, 5, 4, 5))
        assert s.contains_point([5, 4])
        assert not s.contains_point([2, 2])


class TestIntersect:
    def test_intersect_with_polyhedron(self):
        s = pset(box(0, 4, 0, 4)).intersect(box(2, 6, 2, 6))
        assert set(s.integer_points()) == {(x, y) for x in range(2, 5) for y in range(2, 5)}

    def test_intersect_distributes_over_union(self):
        s = pset(box(0, 1, 0, 1), box(3, 4, 3, 4)).intersect(box(1, 3, 1, 3))
        assert set(s.integer_points()) == {(1, 1), (3, 3)}


class TestSubtract:
    def test_subtract_hole(self):
        s = pset(box(0, 2, 0, 2)).subtract(box(1, 1, 1, 1))
        pts = set(s.integer_points())
        assert (1, 1) not in pts
        assert len(pts) == 8

    def test_subtract_everything(self):
        s = pset(box(0, 2, 0, 2)).subtract(box(-1, 5, -1, 5))
        assert s.is_empty()

    def test_subtract_nothing(self):
        s = pset(box(0, 2, 0, 2)).subtract(box(9, 10, 9, 10))
        assert s.count_integer_points() == 9

    def test_subtract_equality_slice(self):
        diag = Polyhedron(S2, eqs=[[1, -1, 0]])  # x = y
        s = pset(box(0, 2, 0, 2)).subtract(diag)
        pts = set(s.integer_points())
        assert all(x != y for x, y in pts)
        assert len(pts) == 6

    def test_subtract_union(self):
        other = PolyhedralSet(S2, [box(0, 0, 0, 2), box(2, 2, 0, 2)])
        s = pset(box(0, 2, 0, 2)).subtract(other)
        pts = set(s.integer_points())
        assert pts == {(1, 0), (1, 1), (1, 2)}


class TestSubsetAndCoalesce:
    def test_subset_of_union_needs_both(self):
        whole = pset(box(0, 3, 0, 0))
        halves = pset(box(0, 1, 0, 0), box(2, 3, 0, 0))
        assert whole.is_subset(halves)
        assert halves.is_subset(whole)

    def test_not_subset(self):
        assert not pset(box(0, 3, 0, 0)).is_subset(pset(box(0, 2, 0, 0)))

    def test_coalesce_drops_contained(self):
        s = pset(box(0, 5, 0, 5), box(1, 2, 1, 2))
        assert len(s.coalesce()) == 1


class TestTransforms:
    def test_exists(self):
        s = pset(box(0, 1, 5, 9)).exists(["y"])
        assert set(s.integer_points()) == {(0,), (1,)}

    def test_bind(self):
        sp = Space(["i", "n"])
        dom = Polyhedron.from_terms(sp, ineq_terms=[({"i": 1}, 0), ({"i": -1, "n": 1}, -1)])
        s = PolyhedralSet(sp, [dom]).bind({"n": 3})
        assert set(s.integer_points()) == {(0,), (1,), (2,)}

    def test_rename(self):
        s = pset(box(0, 1, 0, 1)).rename({"x": "u", "y": "v"})
        assert s.space == Space(["u", "v"])


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4), st.integers(0, 4))
def test_subtract_then_union_restores(a, b, c, d):
    """(P \\ Q) union (P intersect Q) == P on integer points."""
    p = pset(box(0, 4, 0, 4))
    q = box(min(a, b), max(a, b), min(c, d), max(c, d))
    diff = p.subtract(q)
    inter = p.intersect(q)
    restored = set(diff.integer_points()) | set(inter.integer_points())
    assert restored == set(p.integer_points())
    assert set(diff.integer_points()) & set(inter.integer_points()) == set()
