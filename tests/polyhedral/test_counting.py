"""Tests for symbolic integer-point counting (§5.4 Remark support)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral import Polyhedron, Space, symbolic_count


def _context(space, params):
    rows = []
    for p in params:
        row = [0] * (space.dim + 1)
        row[space.index(p)] = 1
        row[-1] = -1
        rows.append(row)
    return Polyhedron(space, ineqs=rows)


class TestBoxCounting:
    def test_plain_box(self):
        space = Space(["i", "j", "n", "m"])
        p = Polyhedron.from_terms(space, ineq_terms=[
            ({"i": 1}, 0), ({"i": -1, "n": 1}, -1),
            ({"j": 1}, 0), ({"j": -1, "m": 1}, -1),
        ]).intersect(_context(space, ["n", "m"]))
        f = symbolic_count(p, ("n", "m"))
        assert f is not None
        assert f.evaluate({"n": 4, "m": 7}) == 28
        assert f.evaluate({"n": 1, "m": 1}) == 1

    def test_guarded_box(self):
        # 1 <= k < n  (the accumulator-read guard)
        space = Space(["k", "n"])
        p = Polyhedron.from_terms(space, ineq_terms=[
            ({"k": 1}, 0), ({"k": 1}, -1), ({"k": -1, "n": 1}, -1),
        ]).intersect(_context(space, ["n"]))
        f = symbolic_count(p, ("n",))
        assert f is not None
        assert f.evaluate({"n": 5}) == 4
        assert f.evaluate({"n": 1}) == 0  # max(0, .) guard

    def test_equality_chain(self):
        # i' = i, k' = k + 1 inside boxes: count is the source box width.
        space = Space(["i", "k", "ip", "kp", "n"])
        p = Polyhedron.from_terms(
            space,
            eq_terms=[({"ip": 1, "i": -1}, 0), ({"kp": 1, "k": -1}, -1)],
            ineq_terms=[({"i": 1}, 0), ({"i": -1, "n": 1}, -1),
                        ({"k": 1}, 0), ({"k": -1, "n": 1}, -1),
                        ({"kp": 1}, 0), ({"kp": -1, "n": 1}, -1)],
        ).intersect(_context(space, ["n"]))
        f = symbolic_count(p, ("n",))
        assert f is not None
        assert f.evaluate({"n": 5}) == 5 * 4  # i free, k in [0, n-2]

    def test_triangle_rejected(self):
        # 0 <= i <= j < n is outside the separable class.
        space = Space(["i", "j", "n"])
        p = Polyhedron.from_terms(space, ineq_terms=[
            ({"i": 1}, 0), ({"j": 1, "i": -1}, 0), ({"j": -1, "n": 1}, -1),
        ]).intersect(_context(space, ["n"]))
        assert symbolic_count(p, ("n",)) is None

    def test_empty_constant_domain(self):
        space = Space(["i", "n"])
        p = Polyhedron.from_terms(space, ineq_terms=[
            ({"i": 1}, 0), ({"i": -1}, -1),  # i >= 0 and i <= -1
        ])
        f = symbolic_count(p, ("n",))
        # Either rejected or evaluates to zero — never a positive count.
        if f is not None:
            assert f.evaluate({"n": 3}) == 0

    def test_formula_rendering(self):
        space = Space(["i", "n"])
        p = Polyhedron.from_terms(space, ineq_terms=[
            ({"i": 1}, 0), ({"i": -1, "n": 1}, -1),
        ]).intersect(_context(space, ["n"]))
        f = symbolic_count(p, ("n",))
        assert "n" in str(f)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 6), m=st.integers(1, 6), g=st.integers(0, 3))
def test_formula_matches_enumeration(n, m, g):
    """On guarded boxes the formula equals brute-force enumeration."""
    space = Space(["i", "j", "n", "m"])
    p = Polyhedron.from_terms(space, ineq_terms=[
        ({"i": 1}, -g), ({"i": -1, "n": 1}, -1),
        ({"j": 1}, 0), ({"j": -1, "m": 1}, -1),
    ]).intersect(_context(space, ["n", "m"]))
    f = symbolic_count(p, ("n", "m"))
    assert f is not None
    brute = p.bind({"n": n, "m": m}).count_integer_points()
    assert f.evaluate({"n": n, "m": m}) == brute
