"""Edge cases: space algebra, error paths, and representation invariants."""

import pytest

from repro.exceptions import (EmptyPolyhedronError, PolyhedralError,
                              SpaceMismatchError)
from repro.polyhedral import Polyhedron, PolyhedralSet, Space


class TestSpace:
    def test_extended(self):
        s = Space(["a"]).extended(["b", "c"])
        assert s.names == ("a", "b", "c")

    def test_extended_duplicate_rejected(self):
        with pytest.raises(PolyhedralError):
            Space(["a"]).extended(["a"])

    def test_contains(self):
        s = Space(["x", "y"])
        assert "x" in s and "z" not in s

    def test_index_missing(self):
        with pytest.raises(PolyhedralError):
            Space(["x"]).index("y")


class TestMismatchErrors:
    def test_intersect_mismatch(self):
        a = Polyhedron.universe(Space(["x"]))
        b = Polyhedron.universe(Space(["y"]))
        with pytest.raises(SpaceMismatchError):
            a.intersect(b)

    def test_product_overlap(self):
        a = Polyhedron.universe(Space(["x"]))
        with pytest.raises(SpaceMismatchError):
            a.product(a)

    def test_align_missing_variable(self):
        a = Polyhedron.universe(Space(["x"]))
        with pytest.raises(SpaceMismatchError):
            a.align(Space(["y"]))

    def test_set_union_mismatch(self):
        a = PolyhedralSet.universe(Space(["x"]))
        b = PolyhedralSet.universe(Space(["y"]))
        with pytest.raises(SpaceMismatchError):
            a.union(b)


class TestRepresentation:
    def test_repr_readable(self):
        p = Polyhedron.box(Space(["x"]), {"x": (0, 3)})
        text = repr(p)
        assert "x >= 0" in text.replace("+", "") or "x" in text

    def test_universe_repr(self):
        assert "true" in repr(Polyhedron.universe(Space(["x"])))

    def test_equalities_canonical_sign(self):
        s = Space(["x", "y"])
        a = Polyhedron(s, eqs=[[-1, 1, 0]])   # -x + y = 0
        b = Polyhedron(s, eqs=[[1, -1, 0]])   # x - y = 0
        assert a.eqs == b.eqs  # canonicalized to the same row

    def test_duplicate_rows_deduped(self):
        s = Space(["x"])
        p = Polyhedron(s, ineqs=[[1, 0], [1, 0], [2, 0]])
        assert len(p.ineqs) == 1  # 2x >= 0 tightens to x >= 0, dedupes

    def test_dominated_bound_dropped(self):
        s = Space(["x"])
        p = Polyhedron(s, ineqs=[[1, 5], [1, 0]])  # x >= -5 and x >= 0
        assert p.ineqs == ((1, 0),)

    def test_empty_var_bounds_raises(self):
        p = Polyhedron.box(Space(["x"]), {"x": (3, 1)})
        with pytest.raises(EmptyPolyhedronError):
            p.var_bounds("x")


class TestBindEdgeCases:
    def test_bind_all_vars(self):
        s = Space(["x", "n"])
        p = Polyhedron.from_terms(s, ineq_terms=[({"x": 1, "n": -1}, 0)])
        q = p.bind({"x": 5, "n": 3})
        assert q.space.dim == 0
        assert not q.is_empty()  # 5 - 3 >= 0 holds

    def test_bind_to_contradiction(self):
        s = Space(["x", "n"])
        p = Polyhedron.from_terms(s, ineq_terms=[({"x": 1, "n": -1}, 0)])
        q = p.bind({"x": 1, "n": 3})
        assert q.is_empty()

    def test_bind_ignores_unknown_names(self):
        s = Space(["x"])
        p = Polyhedron.box(s, {"x": (0, 2)})
        q = p.bind({"z": 7})
        assert q.space == s
        assert q.count_integer_points() == 3
