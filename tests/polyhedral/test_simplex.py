"""Unit tests for the exact two-phase simplex."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral.simplex import LPStatus, is_feasible, solve_lp


class TestFeasibility:
    def test_trivial_feasible(self):
        # x >= 0, -x + 5 >= 0
        assert is_feasible([], [[1, 0], [-1, 5]], 1)

    def test_infeasible(self):
        # x >= 1 and x <= -1
        assert not is_feasible([], [[1, -1], [-1, -1]], 1)

    def test_equality_feasible(self):
        # x + y = 3, x >= 0, y >= 0
        assert is_feasible([[1, 1, -3]], [[1, 0, 0], [0, 1, 0]], 2)

    def test_equality_infeasible(self):
        # x = 1 and x = 2
        assert not is_feasible([[1, -1], [1, -2]], [], 1)

    def test_no_constraints(self):
        assert is_feasible([], [], 2)

    def test_free_variables_allowed(self):
        # x <= -5 (negative region) is feasible because x is free
        assert is_feasible([], [[-1, -5]], 1)


class TestOptimization:
    def test_minimize(self):
        # min x s.t. x >= 2
        res = solve_lp([], [[1, -2]], 1, objective=[1])
        assert res.status is LPStatus.OPTIMAL
        assert res.value == 2

    def test_maximize(self):
        # max x s.t. x <= 7  i.e. -x + 7 >= 0
        res = solve_lp([], [[-1, 7]], 1, objective=[1], maximize=True)
        assert res.status is LPStatus.OPTIMAL
        assert res.value == 7

    def test_unbounded(self):
        res = solve_lp([], [[1, 0]], 1, objective=[1], maximize=True)
        assert res.status is LPStatus.UNBOUNDED

    def test_2d_vertex(self):
        # min x + y s.t. x >= 1, y >= 2
        res = solve_lp([], [[1, 0, -1], [0, 1, -2]], 2, objective=[1, 1])
        assert res.value == 3
        assert res.point == (1, 2)

    def test_fractional_optimum(self):
        # min x s.t. 2x >= 1
        res = solve_lp([], [[2, -1]], 1, objective=[1])
        assert res.value == Fraction(1, 2)

    def test_equality_guides_optimum(self):
        # min y s.t. x + y = 10, x <= 4
        res = solve_lp([[1, 1, -10]], [[-1, 0, 4]], 2, objective=[0, 1])
        assert res.value == 6

    def test_degenerate_does_not_cycle(self):
        # Klee-Minty-flavoured degenerate system; Bland's rule must terminate.
        ineqs = [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, 1, 0],
            [-1, -1, 0, 1],
            [0, -1, -1, 1],
            [-1, 0, -1, 1],
        ]
        res = solve_lp([], ineqs, 3, objective=[-1, -1, -1])
        assert res.status is LPStatus.OPTIMAL

    def test_point_satisfies_constraints(self):
        eqs = [[1, 2, -4]]          # x + 2y = 4
        ineqs = [[1, 0, 0], [0, 1, 0]]
        res = solve_lp(eqs, ineqs, 2, objective=[1, 0])
        x, y = res.point
        assert x + 2 * y == 4
        assert x >= 0 and y >= 0
        assert res.value == 0  # minimize x


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(-4, 4), st.integers(-4, 4), st.integers(-8, 8)),
                min_size=1, max_size=6))
def test_feasible_point_is_returned_inside(ineq_rows):
    """Whenever the LP is feasible, the witness point satisfies every row."""
    res = solve_lp([], ineq_rows, 2)
    if res.status is LPStatus.OPTIMAL:
        x, y = res.point
        for a, b, c in ineq_rows:
            assert a * x + b * y + c >= 0


@settings(max_examples=50, deadline=None)
@given(st.integers(-10, 10), st.integers(-10, 10))
def test_box_min_max(lo, hi):
    """min/max of x over [lo, hi] equals lo/hi when the box is nonempty."""
    ineqs = [[1, -lo], [-1, hi]]
    res_min = solve_lp([], ineqs, 1, objective=[1])
    res_max = solve_lp([], ineqs, 1, objective=[1], maximize=True)
    if lo <= hi:
        assert res_min.value == lo
        assert res_max.value == hi
    else:
        assert res_min.status is LPStatus.INFEASIBLE
