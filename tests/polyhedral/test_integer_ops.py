"""Additional coverage for integer operations: sampling, lexmin edge cases,
redundancy, coalescing, and the small-point sampler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import UnboundedError
from repro.polyhedral import Polyhedron, PolyhedralSet, Space


def box(names_bounds):
    space = Space(list(names_bounds))
    return Polyhedron.box(space, names_bounds)


class TestSampleSmallIntegerPoint:
    def test_simple_box(self):
        p = box({"x": (-2, 2), "y": (-2, 2)})
        pt = p.sample_small_integer_point()
        assert pt is not None
        assert p.contains_point(pt)

    def test_prefers_small_l1(self):
        p = box({"x": (1, 5)})
        assert p.sample_small_integer_point() == (1,)

    def test_equality_substitution(self):
        # y = x + 3, x in [-1, 1]: reduced grid is 1-d.
        space = Space(["x", "y"])
        p = Polyhedron(space, eqs=[[1, -1, 3]],
                       ineqs=[[1, 0, 1], [-1, 0, 1]])
        pt = p.sample_small_integer_point()
        assert pt is not None
        x, y = pt
        assert y == x + 3 and -1 <= x <= 1

    def test_unbounded_returns_none(self):
        p = Polyhedron(Space(["x"]), ineqs=[[1, 0]])  # x >= 0, no upper bound
        assert p.sample_small_integer_point() is None

    def test_empty_returns_none(self):
        p = box({"x": (3, 1)})
        assert p.sample_small_integer_point() is None

    def test_infeasible_equality_chain(self):
        # x = y, y = x + 1: contradiction found during substitution.
        space = Space(["x", "y"])
        p = Polyhedron(space, eqs=[[1, -1, 0], [1, -1, 1]],
                       ineqs=[[1, 0, 5], [-1, 0, 5]])
        assert p.sample_small_integer_point() is None

    def test_nonnegative_tie_break(self):
        p = box({"x": (-1, 1)})
        # both -1 and 1 have |x| = 1; 0 has L1 = 0 and wins outright
        assert p.sample_small_integer_point() == (0,)
        q = p.add_constraints(ineqs=[[2, -1]])  # 2x >= 1 -> x >= 1
        assert q.sample_small_integer_point() == (1,)


class TestLexExtremes:
    def test_lexmax_with_negative_coordinates(self):
        p = box({"x": (-5, -2), "y": (0, 3)})
        assert p.lexmin() == (-5, 0)
        assert p.lexmax() == (-2, 3)

    def test_lexmin_unbounded_raises(self):
        p = Polyhedron(Space(["x"]), ineqs=[[-1, 0]])  # x <= 0
        with pytest.raises(UnboundedError):
            p.lexmin()

    def test_lexmin_on_diagonal_strip(self):
        # 0 <= x <= 5, x <= y <= x + 1
        p = box({"x": (0, 5), "y": (0, 99)}).add_constraints(
            ineqs=[[-1, 1, 0], [1, -1, 1]])
        assert p.lexmin() == (0, 0)
        assert p.lexmax() == (5, 6)


class TestRedundancyAndHull:
    def test_redundant_equalities_kept_consistent(self):
        space = Space(["x", "y"])
        p = Polyhedron(space, eqs=[[1, -1, 0], [2, -2, 0]],
                       ineqs=[[1, 0, 0], [-1, 0, 4]])
        assert p.count_integer_points() == 5

    def test_remove_redundancy_idempotent(self):
        p = box({"x": (0, 3)}).add_constraints(ineqs=[[1, 5], [1, 1]])
        once = p.remove_redundancy()
        twice = once.remove_redundancy()
        assert once.ineqs == twice.ineqs

    def test_remove_redundancy_of_empty(self):
        p = box({"x": (3, 0)})
        assert p.remove_redundancy().is_empty()

    def test_affine_hull_of_segment(self):
        # x + y = 4 implied by x+y >= 4 and x+y <= 4
        space = Space(["x", "y"])
        p = Polyhedron(space, ineqs=[[1, 1, -4], [-1, -1, 4], [1, 0, 0]])
        hull = p.affine_hull_eqs()
        assert any(tuple(r[:2]) in [(1, 1), (-1, -1)] for r in hull)


class TestSetCoalesce:
    def test_coalesce_keeps_one_of_equal_pair(self):
        space = Space(["x"])
        a = Polyhedron.box(space, {"x": (0, 3)})
        b = Polyhedron.box(space, {"x": (0, 3)})
        s = PolyhedralSet(space, [a, b]).coalesce()
        assert len(s) == 1

    def test_coalesce_preserves_points(self):
        space = Space(["x"])
        parts = [Polyhedron.box(space, {"x": (0, 5)}),
                 Polyhedron.box(space, {"x": (2, 3)}),
                 Polyhedron.box(space, {"x": (7, 8)})]
        s = PolyhedralSet(space, parts)
        assert set(s.coalesce().integer_points()) == set(s.integer_points())


@settings(max_examples=30, deadline=None)
@given(lo=st.integers(-4, 4), hi=st.integers(-4, 4), a=st.integers(-3, 3),
       c=st.integers(-6, 6))
def test_sample_small_point_is_always_valid(lo, hi, a, c):
    """Whatever the sampler returns must lie in the polyhedron, and it must
    find a point whenever simple enumeration does."""
    space = Space(["x", "y"])
    p = Polyhedron.box(space, {"x": (lo, hi), "y": (-3, 3)}).add_constraints(
        ineqs=[[a, 1, c]])
    pt = p.sample_small_integer_point()
    brute = p.integer_points() if lo <= hi else []
    if pt is not None:
        assert p.contains_point(pt)
        assert tuple(pt) in set(brute)
    else:
        assert not brute
