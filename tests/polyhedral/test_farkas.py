"""Unit tests for the affine form of the Farkas lemma.

The headline check reproduces the worked example from Section 5.2 of the
paper: for the dependence s2WE -> s2WE of Example 1 (polyhedron i'=i, j'=j,
k'=k+1), requiring theta.(i',j',k') - theta.(i,j,k) >= 1 must force gamma >= 1
with alpha, beta free.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyPolyhedronError
from repro.polyhedral import (Polyhedron, Space, SymbolicForm, farkas_equals_const,
                              farkas_nonneg)


def brute_force_check(poly_points, form, u_values):
    return all(form.evaluate(u_values, pt) >= 0 for pt in poly_points)


class TestPaperExample:
    """Section 5.2 worked example: dependence s2WE -> s2WE."""

    def setup_method(self):
        # y = (i, j, k, i', j', k'); polyhedron: i'=i, j'=j, k'=k+1,
        # plus a box to make it bounded (parameters bound in the paper too).
        self.y = Space(["i", "j", "k", "ip", "jp", "kp"])
        rows_eq = [
            [-1, 0, 0, 1, 0, 0, 0],   # i' - i = 0
            [0, -1, 0, 0, 1, 0, 0],   # j' - j = 0
            [0, 0, -1, 0, 0, 1, -1],  # k' - k - 1 = 0
        ]
        box = {v: (0, 10) for v in self.y.names}
        self.poly = Polyhedron.box(self.y, box).add_constraints(eqs=rows_eq)
        # psi = alpha*(i'-i) + beta*(j'-j) + gamma*(k'-k) - 1  >= 0
        self.form = SymbolicForm(self.y, terms={
            "alpha": [-1, 0, 0, 1, 0, 0, 0],
            "beta": [0, -1, 0, 0, 1, 0, 0],
            "gamma": [0, 0, -1, 0, 0, 1, 0],
        }, const=[0, 0, 0, 0, 0, 0, -1])
        self.u = Space(["alpha", "beta", "gamma"])

    def test_gamma_must_be_at_least_one(self):
        result = farkas_nonneg(self.poly, self.form, self.u)
        assert result.contains_point([0, 0, 1])      # gamma = 1 works
        assert result.contains_point([5, -7, 2])     # alpha, beta free
        assert not result.contains_point([0, 0, 0])  # gamma = 0 fails
        assert not result.contains_point([1, 1, -1])

    def test_result_matches_brute_force(self):
        result = farkas_nonneg(self.poly, self.form, self.u)
        pts = self.poly.integer_points()
        for alpha in (-1, 0, 1):
            for beta in (-1, 0, 1):
                for gamma in (0, 1, 2):
                    u = {"alpha": alpha, "beta": beta, "gamma": gamma}
                    expected = brute_force_check(pts, self.form, u)
                    assert result.contains_point([alpha, beta, gamma]) == expected


class TestBasicForms:
    def test_nonneg_on_box(self):
        # For all x in [0, 5]: a*x + b >= 0  iff  b >= 0 and 5a + b >= 0
        y = Space(["x"])
        poly = Polyhedron.box(y, {"x": (0, 5)})
        form = SymbolicForm(y, terms={"a": [1, 0]}, const=[0, 0])
        form.add_term("b", [0, 1])
        u = Space(["a", "b"])
        result = farkas_nonneg(poly, form, u)
        assert result.contains_point([0, 0])
        assert result.contains_point([1, 0])
        assert result.contains_point([-1, 5])
        assert not result.contains_point([-1, 4])
        assert not result.contains_point([0, -1])

    def test_equals_const(self):
        # For all x in [0, 5]: a*x + b == 3 forces a = 0, b = 3
        y = Space(["x"])
        poly = Polyhedron.box(y, {"x": (0, 5)})
        form = SymbolicForm(y, terms={"a": [1, 0], "b": [0, 1]})
        u = Space(["a", "b"])
        result = farkas_equals_const(poly, form, u, 3)
        assert result.contains_point([0, 3])
        assert not result.contains_point([1, 3])
        assert not result.contains_point([0, 2])

    def test_empty_polyhedron_raises(self):
        y = Space(["x"])
        poly = Polyhedron.empty(y)
        form = SymbolicForm(y, terms={"a": [1, 0]})
        with pytest.raises(EmptyPolyhedronError):
            farkas_nonneg(poly, form, Space(["a"]))

    def test_point_domain(self):
        # Singleton domain {x = 2}: a*x - 4 >= 0 iff 2a >= 4 iff a >= 2
        y = Space(["x"])
        poly = Polyhedron(y, eqs=[[1, -2]])
        form = SymbolicForm(y, terms={"a": [1, 0]}, const=[0, -4])
        result = farkas_nonneg(poly, form, Space(["a"]))
        assert result.contains_point([2])
        assert not result.contains_point([1])

    def test_shift_and_negate(self):
        y = Space(["x"])
        form = SymbolicForm(y, terms={"a": [1, 0]}, const=[0, 1])
        assert form.shift(2).const[-1] == 3
        neg = form.negate()
        assert neg.const[-1] == -1
        assert neg.terms["a"] == [-1, 0]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 6), st.integers(1, 6), st.integers(-3, 3), st.integers(-3, 3))
def test_farkas_soundness_property(lo, width, a, b):
    """Any (a, b) accepted by the Farkas result truly satisfies psi >= 0 on
    every integer point; any rejected (a, b) violates it somewhere (on the
    rationals; integers suffice here because the box has integer vertices)."""
    y = Space(["x"])
    poly = Polyhedron.box(y, {"x": (lo, lo + width)})
    form = SymbolicForm(y, terms={"a": [1, 0], "b": [0, 1]})
    result = farkas_nonneg(poly, form, Space(["a", "b"]))
    truth = all(a * x + b >= 0 for x in range(lo, lo + width + 1))
    assert result.contains_point([a, b]) == truth
