"""Unit tests for exact rational linear algebra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral.matrix import (RationalMatrix, normalize_integer_row,
                                     row_gcd)


class TestNormalizeIntegerRow:
    def test_clears_denominators(self):
        assert normalize_integer_row([Fraction(1, 2), Fraction(1, 3)]) == (3, 2)

    def test_divides_gcd(self):
        assert normalize_integer_row([4, 6, 8]) == (2, 3, 4)

    def test_zero_row(self):
        assert normalize_integer_row([0, 0]) == (0, 0)

    def test_negative_values_preserved(self):
        assert normalize_integer_row([-2, 4]) == (-1, 2)


class TestRowGcd:
    def test_simple(self):
        assert row_gcd([4, 6]) == 2

    def test_all_zero(self):
        assert row_gcd([0, 0]) == 0

    def test_coprime(self):
        assert row_gcd([3, 5]) == 1


class TestMatrixBasics:
    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            RationalMatrix([[1, 2], [1]])

    def test_empty_needs_ncols(self):
        with pytest.raises(ValueError):
            RationalMatrix([])
        m = RationalMatrix([], ncols=3)
        assert m.nrows == 0 and m.ncols == 3

    def test_identity_matmul(self):
        m = RationalMatrix([[1, 2], [3, 4]])
        assert m.matmul(RationalMatrix.identity(2)) == m

    def test_matvec(self):
        m = RationalMatrix([[1, 2], [3, 4]])
        assert m.matvec([1, 1]) == (3, 7)

    def test_transpose_involution(self):
        m = RationalMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.transpose().transpose() == m


class TestElimination:
    def test_rank_full(self):
        assert RationalMatrix([[1, 0], [0, 1]]).rank() == 2

    def test_rank_deficient(self):
        assert RationalMatrix([[1, 2], [2, 4]]).rank() == 1

    def test_null_space_dim(self):
        m = RationalMatrix([[1, 2, 3]])
        basis = m.null_space()
        assert len(basis) == 2
        for vec in basis:
            assert m.matvec(vec) == (0,)

    def test_solve_consistent(self):
        m = RationalMatrix([[2, 0], [0, 3]])
        assert m.solve([4, 9]) == (2, 3)

    def test_solve_inconsistent(self):
        m = RationalMatrix([[1, 1], [1, 1]])
        assert m.solve([1, 2]) is None

    def test_solve_underdetermined(self):
        m = RationalMatrix([[1, 1]])
        x = m.solve([5])
        assert x is not None
        assert x[0] + x[1] == 5

    def test_in_row_space(self):
        m = RationalMatrix([[1, 0, 0], [0, 1, 0]])
        assert m.in_row_space([2, 3, 0])
        assert not m.in_row_space([0, 0, 1])

    def test_inverse(self):
        m = RationalMatrix([[2, 1], [1, 1]])
        inv = m.inverse()
        assert m.matmul(inv) == RationalMatrix.identity(2)

    def test_inverse_singular_raises(self):
        with pytest.raises(ValueError):
            RationalMatrix([[1, 2], [2, 4]]).inverse()

    def test_row_space_basis_spans(self):
        m = RationalMatrix([[1, 2], [3, 6], [0, 1]])
        basis = RationalMatrix(m.row_space_basis())
        assert basis.rank() == m.rank() == 2


@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(st.integers(-6, 6), min_size=3, max_size=3),
                min_size=1, max_size=4))
def test_rank_nullity_property(rows):
    """rank + nullity == number of columns (rank-nullity theorem)."""
    m = RationalMatrix(rows)
    assert m.rank() + len(m.null_space()) == m.ncols


@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(st.integers(-6, 6), min_size=3, max_size=3),
                min_size=1, max_size=4),
       st.lists(st.integers(-6, 6), min_size=3, max_size=3))
def test_solve_verifies(rows, x):
    """For rhs = M x, solve returns some solution whose image is rhs."""
    m = RationalMatrix(rows)
    rhs = m.matvec(x)
    sol = m.solve(rhs)
    assert sol is not None
    assert m.matvec(sol) == rhs
