"""Unit tests for the LAB-tree store (B+-tree keyed by linearized block index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.storage import LABTree, SimulatedDisk
from repro.storage.labtree import _ORDER


class TestBasics:
    def test_write_read(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", (3, 3), (2, 2))
            blk = np.full((2, 2), 5.0)
            t.write_block((2, 1), blk)
            assert np.array_equal(t.read_block((2, 1)), blk)

    def test_missing_block_raises(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", (3, 3), (2, 2))
            with pytest.raises(StorageError):
                t.read_block((0, 0))

    def test_has_block(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", (3, 3), (2, 2))
            t.write_block((1, 1), np.zeros((2, 2)))
            assert t.has_block((1, 1))
            assert not t.has_block((0, 0))

    def test_overwrite_in_place(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", (2, 2), (2, 2))
            t.write_block((0, 0), np.full((2, 2), 1.0))
            t.write_block((0, 0), np.full((2, 2), 2.0))
            assert np.array_equal(t.read_block((0, 0)), np.full((2, 2), 2.0))
            assert len(list(t.iter_keys())) == 1

    def test_sparse_population(self, tmp_path):
        """Only written blocks consume data space (unlike the DAF)."""
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", (100, 100), (2, 2))
            t.write_block((99, 99), np.ones((2, 2)))
            assert t.data_file.size() == t.layout.block_bytes

    def test_iter_keys_sorted(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", (10, 10), (2, 2))
            coords = [(7, 3), (0, 0), (9, 9), (5, 5), (2, 8)]
            for c in coords:
                t.write_block(c, np.zeros((2, 2)))
            keys = list(t.iter_keys())
            assert keys == sorted(t.layout.linearize(c) for c in coords)

    def test_payload_io_counted_tree_pages_not(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", (4, 4), (2, 2))
            t.write_block((1, 1), np.zeros((2, 2)))
            t.read_block((1, 1))
            assert disk.stats.write_bytes == t.layout.block_bytes
            assert disk.stats.read_bytes == t.layout.block_bytes


class TestSplitsAndPersistence:
    def test_many_inserts_force_splits(self, tmp_path):
        n = _ORDER * 3 + 7  # guarantees at least two leaf splits
        grid = (n, 1)
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", grid, (1, 1))
            rng = np.random.default_rng(0)
            order = rng.permutation(n)
            for i in order:
                t.write_block((int(i), 0), np.array([[float(i)]]))
            assert list(t.iter_keys()) == list(range(n))
            for i in range(n):
                assert t.read_block((i, 0))[0, 0] == float(i)
            assert t._npages > 3  # root split happened

    def test_reopen_after_splits(self, tmp_path):
        n = _ORDER + 10
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", (n, 1), (1, 1))
            for i in range(n):
                t.write_block((i, 0), np.array([[float(i)]]))
        with SimulatedDisk(tmp_path) as disk2:
            t2 = LABTree.open(disk2, "M")
            assert t2.read_block((n - 1, 0))[0, 0] == float(n - 1)
            assert list(t2.iter_keys()) == list(range(n))

    def test_matrix_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        full = rng.standard_normal((8, 6))
        with SimulatedDisk(tmp_path) as disk:
            t = LABTree.create(disk, "M", (4, 3), (2, 2))
            t.write_matrix(full)
            assert np.allclose(t.read_matrix(), full)


@settings(max_examples=15, deadline=None)
@given(coords=st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)),
                       min_size=1, max_size=60))
def test_labtree_vs_dict_property(tmp_path_factory, coords):
    """The tree behaves like a dict keyed by block coordinates."""
    root = tmp_path_factory.mktemp("lab")
    model: dict[tuple, float] = {}
    with SimulatedDisk(root) as disk:
        t = LABTree.create(disk, "M", (20, 20), (1, 1))
        for n, c in enumerate(coords):
            t.write_block(c, np.array([[float(n)]]))
            model[c] = float(n)
        for c, v in model.items():
            assert t.read_block(c)[0, 0] == v
        assert sorted(t.iter_keys()) == sorted(
            t.layout.linearize(c) for c in model)
