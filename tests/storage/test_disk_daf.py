"""Unit tests for the simulated disk and the DAF store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.optimizer import IOModel
from repro.storage import BlockLayout, DAFMatrix, SimulatedDisk


class TestIOStats:
    def test_counting(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"hello")
            f.read_at(0, 5)
            assert disk.stats.write_bytes == 5
            assert disk.stats.read_bytes == 5
            assert disk.stats.write_ops == disk.stats.read_ops == 1

    def test_uncounted_io(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"hello", count=False)
            f.read_at(0, 5, count=False)
            assert disk.stats.write_bytes == 0
            assert disk.stats.read_bytes == 0

    def test_since_snapshot(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"aa")
            snap = disk.stats.snapshot()
            f.write_at(2, b"bbb")
            delta = disk.stats.since(snap)
            assert delta.write_bytes == 3

    def test_simulated_seconds(self, tmp_path):
        model = IOModel(read_bw=100, write_bw=50)
        with SimulatedDisk(tmp_path, model) as disk:
            f = disk.open("x")
            f.write_at(0, b"x" * 100)
            f.read_at(0, 100)
            assert disk.simulated_seconds() == pytest.approx(1.0 + 2.0)

    def test_short_read_raises(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"ab")
            with pytest.raises(StorageError):
                f.read_at(0, 10)

    def test_positional_write_overwrites(self, tmp_path):
        """Regression: writes must honour seek, not append."""
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"aaaa")
            f.write_at(1, b"bb")
            assert f.read_at(0, 4) == b"abba"


class TestBlockLayout:
    def test_column_major_linearization(self):
        lay = BlockLayout((3, 2), (4, 4))
        # first coordinate (row) varies fastest
        assert [lay.linearize((i, j)) for j in range(2) for i in range(3)] == list(range(6))

    def test_roundtrip(self):
        lay = BlockLayout((4, 5), (2, 3))
        for idx in range(lay.num_blocks):
            assert lay.linearize(lay.delinearize(idx)) == idx

    def test_out_of_range(self):
        lay = BlockLayout((2, 2), (4, 4))
        with pytest.raises(StorageError):
            lay.linearize((2, 0))
        with pytest.raises(StorageError):
            lay.delinearize(4)

    def test_block_bytes(self):
        lay = BlockLayout((2, 2), (10, 20))
        assert lay.block_bytes == 10 * 20 * 8

    def test_serialize_roundtrip_fortran_order(self):
        lay = BlockLayout((1, 1), (3, 2))
        blk = np.arange(6, dtype=np.float64).reshape(3, 2)
        assert np.array_equal(lay.bytes_to_block(lay.block_to_bytes(blk)), blk)

    def test_bad_payload_size(self):
        lay = BlockLayout((1, 1), (2, 2))
        with pytest.raises(StorageError):
            lay.bytes_to_block(b"123")


class TestDAF:
    def test_create_write_read(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            blk = np.full((3, 3), 7.0)
            m.write_block((1, 0), blk)
            assert np.array_equal(m.read_block((1, 0)), blk)

    def test_unwritten_blocks_read_zero(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            assert np.array_equal(m.read_block((0, 1)), np.zeros((3, 3)))

    def test_io_counted_per_block(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            m.write_block((0, 0), np.ones((3, 3)))
            m.read_block((0, 0))
            assert disk.stats.write_bytes == 72
            assert disk.stats.read_bytes == 72

    def test_matrix_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        full = rng.standard_normal((6, 6))
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            m.write_matrix(full)
            assert np.allclose(m.read_matrix(), full)

    def test_reopen(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 3), (4, 5))
            m.write_block((1, 2), np.full((4, 5), 3.0))
        with SimulatedDisk(tmp_path) as disk2:
            m2 = DAFMatrix.open(disk2, "M")
            assert m2.layout.grid == (2, 3)
            assert np.array_equal(m2.read_block((1, 2)), np.full((4, 5), 3.0))

    def test_preallocate_is_blockwise_and_checksummed(self, tmp_path):
        """Zero-fill never materializes the dense matrix (peak memory is one
        block) and records checksums, so reads of untouched regions verify."""
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            m.preallocate()
            assert disk.stats.write_bytes == 0  # uncounted setup I/O
            for coords in m.layout.iter_blocks():
                idx = m.layout.linearize(coords)
                assert m.checksums.expected(idx) is not None
            assert np.array_equal(m.read_matrix(), np.zeros((6, 6)))

    def test_open_rejects_garbage(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("junk.daf")
            f.write_at(0, b"\0" * 64, count=False)
            with pytest.raises(StorageError):
                DAFMatrix.open(disk, "junk")


@settings(max_examples=20, deadline=None)
@given(gr=st.integers(1, 4), gc=st.integers(1, 4), br=st.integers(1, 5),
       bc=st.integers(1, 5), seed=st.integers(0, 2 ** 31 - 1))
def test_daf_roundtrip_property(tmp_path_factory, gr, gc, br, bc, seed):
    rng = np.random.default_rng(seed)
    full = rng.standard_normal((gr * br, gc * bc))
    root = tmp_path_factory.mktemp("daf")
    with SimulatedDisk(root) as disk:
        m = DAFMatrix.create(disk, "M", (gr, gc), (br, bc))
        m.write_matrix(full)
        assert np.allclose(m.read_matrix(), full)


class TestBatchedRunReads:
    def _store(self, tmp_path, grid=(4, 2), blk=(4, 4)):
        disk = SimulatedDisk(tmp_path)
        mat = DAFMatrix.create(disk, "m", grid, blk)
        rng = np.random.default_rng(3)
        full = rng.standard_normal(mat.layout.total_shape)
        mat.write_matrix(full, count=False)
        return disk, mat

    def test_run_matches_per_block_reads(self, tmp_path):
        disk, mat = self._store(tmp_path)
        blocks, extra = mat.read_block_run((0, 0), 4)
        for i, b in enumerate(blocks):
            coords = mat.layout.delinearize(i)
            np.testing.assert_array_equal(
                b, mat.read_block(coords, count=False))
        assert extra == [0, 0, 0, 0]
        disk.close()

    def test_run_is_one_counted_op(self, tmp_path):
        disk, mat = self._store(tmp_path)
        bb = mat.layout.block_bytes
        mat.read_block_run((0, 0), 4)
        assert disk.stats.read_ops == 1
        assert disk.stats.read_bytes == 4 * bb
        disk.close()

    def test_run_crossing_column_boundary(self, tmp_path):
        """Linear order is column-major: a run can wrap from the bottom of
        one block column into the top of the next."""
        disk, mat = self._store(tmp_path, grid=(4, 2))
        blocks, _ = mat.read_block_run((2, 0), 4)  # linear 2,3,4,5
        for i, b in enumerate(blocks):
            coords = mat.layout.delinearize(2 + i)
            np.testing.assert_array_equal(
                b, mat.read_block(coords, count=False))
        disk.close()

    def test_run_beyond_grid_rejected(self, tmp_path):
        disk, mat = self._store(tmp_path)
        with pytest.raises(StorageError, match="exceeds grid"):
            mat.read_block_run((3, 1), 2)  # linear 7 + 2 > 8 blocks
        with pytest.raises(StorageError, match="exceeds grid"):
            mat.read_block_run((0, 0), 0)
        disk.close()

    def test_transient_corruption_healed_per_block(self, tmp_path):
        """A corrupted batched transfer heals through the retried per-block
        path; the healing bytes are attributed in ``extra``."""
        from repro.storage import FaultInjector, FaultPolicy
        inj = FaultInjector(0, [FaultPolicy(op="read", corrupt=1.0,
                                            max_faults=1)])
        disk = SimulatedDisk(tmp_path, fault_injector=inj)
        mat = DAFMatrix.create(disk, "m", (4, 1), (4, 4))
        rng = np.random.default_rng(3)
        full = rng.standard_normal(mat.layout.total_shape)
        mat.write_matrix(full, count=False)

        blocks, extra = mat.read_block_run((0, 0), 4)
        for i, b in enumerate(blocks):
            coords = mat.layout.delinearize(i)
            np.testing.assert_array_equal(
                b, mat.read_block(coords, count=False))
        assert disk.stats.checksum_failures >= 1
        # At least one block was re-read; its bytes are charged in extra.
        assert sum(extra) >= mat.layout.block_bytes
        disk.close()


class TestPacedIO:
    def test_pace_sleeps_roughly_modeled_time(self, tmp_path):
        import time
        model = IOModel(read_bw=1_000_000, write_bw=1_000_000)
        disk = SimulatedDisk(tmp_path, model, pace=1.0)
        f = disk.open("p.bin")
        payload = b"x" * 100_000  # 0.1 s modeled transfer
        t0 = time.perf_counter()
        f.write_at(0, payload)
        f.read_at(0, len(payload))
        elapsed = time.perf_counter() - t0
        # Two paced ops ≈ 0.2 s modeled; scheduling jitter only adds.
        assert elapsed >= 0.15
        assert disk.stats.read_ops == 1
        disk.close()

    def test_default_pace_is_free(self, tmp_path):
        import time
        disk = SimulatedDisk(tmp_path, IOModel())
        f = disk.open("p.bin")
        t0 = time.perf_counter()
        f.write_at(0, b"x" * 1_000_000)
        assert time.perf_counter() - t0 < 0.5
        disk.close()
