"""Unit tests for the simulated disk and the DAF store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.optimizer import IOModel
from repro.storage import BlockLayout, DAFMatrix, SimulatedDisk


class TestIOStats:
    def test_counting(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"hello")
            f.read_at(0, 5)
            assert disk.stats.write_bytes == 5
            assert disk.stats.read_bytes == 5
            assert disk.stats.write_ops == disk.stats.read_ops == 1

    def test_uncounted_io(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"hello", count=False)
            f.read_at(0, 5, count=False)
            assert disk.stats.write_bytes == 0
            assert disk.stats.read_bytes == 0

    def test_since_snapshot(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"aa")
            snap = disk.stats.snapshot()
            f.write_at(2, b"bbb")
            delta = disk.stats.since(snap)
            assert delta.write_bytes == 3

    def test_simulated_seconds(self, tmp_path):
        model = IOModel(read_bw=100, write_bw=50)
        with SimulatedDisk(tmp_path, model) as disk:
            f = disk.open("x")
            f.write_at(0, b"x" * 100)
            f.read_at(0, 100)
            assert disk.simulated_seconds() == pytest.approx(1.0 + 2.0)

    def test_short_read_raises(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"ab")
            with pytest.raises(StorageError):
                f.read_at(0, 10)

    def test_positional_write_overwrites(self, tmp_path):
        """Regression: writes must honour seek, not append."""
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("x")
            f.write_at(0, b"aaaa")
            f.write_at(1, b"bb")
            assert f.read_at(0, 4) == b"abba"


class TestBlockLayout:
    def test_column_major_linearization(self):
        lay = BlockLayout((3, 2), (4, 4))
        # first coordinate (row) varies fastest
        assert [lay.linearize((i, j)) for j in range(2) for i in range(3)] == list(range(6))

    def test_roundtrip(self):
        lay = BlockLayout((4, 5), (2, 3))
        for idx in range(lay.num_blocks):
            assert lay.linearize(lay.delinearize(idx)) == idx

    def test_out_of_range(self):
        lay = BlockLayout((2, 2), (4, 4))
        with pytest.raises(StorageError):
            lay.linearize((2, 0))
        with pytest.raises(StorageError):
            lay.delinearize(4)

    def test_block_bytes(self):
        lay = BlockLayout((2, 2), (10, 20))
        assert lay.block_bytes == 10 * 20 * 8

    def test_serialize_roundtrip_fortran_order(self):
        lay = BlockLayout((1, 1), (3, 2))
        blk = np.arange(6, dtype=np.float64).reshape(3, 2)
        assert np.array_equal(lay.bytes_to_block(lay.block_to_bytes(blk)), blk)

    def test_bad_payload_size(self):
        lay = BlockLayout((1, 1), (2, 2))
        with pytest.raises(StorageError):
            lay.bytes_to_block(b"123")


class TestDAF:
    def test_create_write_read(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            blk = np.full((3, 3), 7.0)
            m.write_block((1, 0), blk)
            assert np.array_equal(m.read_block((1, 0)), blk)

    def test_unwritten_blocks_read_zero(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            assert np.array_equal(m.read_block((0, 1)), np.zeros((3, 3)))

    def test_io_counted_per_block(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            m.write_block((0, 0), np.ones((3, 3)))
            m.read_block((0, 0))
            assert disk.stats.write_bytes == 72
            assert disk.stats.read_bytes == 72

    def test_matrix_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        full = rng.standard_normal((6, 6))
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            m.write_matrix(full)
            assert np.allclose(m.read_matrix(), full)

    def test_reopen(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 3), (4, 5))
            m.write_block((1, 2), np.full((4, 5), 3.0))
        with SimulatedDisk(tmp_path) as disk2:
            m2 = DAFMatrix.open(disk2, "M")
            assert m2.layout.grid == (2, 3)
            assert np.array_equal(m2.read_block((1, 2)), np.full((4, 5), 3.0))

    def test_preallocate_is_blockwise_and_checksummed(self, tmp_path):
        """Zero-fill never materializes the dense matrix (peak memory is one
        block) and records checksums, so reads of untouched regions verify."""
        with SimulatedDisk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (3, 3))
            m.preallocate()
            assert disk.stats.write_bytes == 0  # uncounted setup I/O
            for coords in m.layout.iter_blocks():
                idx = m.layout.linearize(coords)
                assert m.checksums.expected(idx) is not None
            assert np.array_equal(m.read_matrix(), np.zeros((6, 6)))

    def test_open_rejects_garbage(self, tmp_path):
        with SimulatedDisk(tmp_path) as disk:
            f = disk.open("junk.daf")
            f.write_at(0, b"\0" * 64, count=False)
            with pytest.raises(StorageError):
                DAFMatrix.open(disk, "junk")


@settings(max_examples=20, deadline=None)
@given(gr=st.integers(1, 4), gc=st.integers(1, 4), br=st.integers(1, 5),
       bc=st.integers(1, 5), seed=st.integers(0, 2 ** 31 - 1))
def test_daf_roundtrip_property(tmp_path_factory, gr, gc, br, bc, seed):
    rng = np.random.default_rng(seed)
    full = rng.standard_normal((gr * br, gc * bc))
    root = tmp_path_factory.mktemp("daf")
    with SimulatedDisk(root) as disk:
        m = DAFMatrix.create(disk, "M", (gr, gc), (br, bc))
        m.write_matrix(full)
        assert np.allclose(m.read_matrix(), full)
