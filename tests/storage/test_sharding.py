"""Sharded-disk striping: placement math, parity with a single disk, and
per-shard fault domains (ISSUE 10 tentpole + satellite 3)."""

import numpy as np
import pytest

from repro.engine import run_program
from repro.exceptions import ExecutionError, StorageError
from repro.optimizer import optimize
from repro.storage import (DAFMatrix, LABTree, ShardedDisk, SimulatedDisk,
                           make_disk)
from repro.storage.faults import FaultInjector, FaultPolicy, RetryPolicy
from repro.storage.sharding import _name_base
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def plan(prog):
    return optimize(prog, P).best()


@pytest.fixture(scope="module")
def inputs(prog):
    rng = np.random.default_rng(10)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


class TestStripePlacement:
    def test_round_robin_owner(self, tmp_path):
        with ShardedDisk(tmp_path, 4, stripe_bytes=1024) as disk:
            f = disk.open("x")
            base = _name_base("x") % 4
            owners = [f.owner(s) for s in range(8)]
            assert owners == [(base + s) % 4 for s in range(8)]
            assert sorted(set(owners)) == [0, 1, 2, 3]

    def test_segments_split_at_stripe_boundaries(self, tmp_path):
        with ShardedDisk(tmp_path, 2, stripe_bytes=1024) as disk:
            f = disk.open("x")
            segs = f.segments(512, 2048)  # spans stripes 0,1,2
            assert [(o, n) for _, o, n in segs] == \
                [(512, 512), (1024, 1024), (2048, 512)]
            assert sum(n for _, _, n in segs) == 2048
            # round-robin at n=2: adjacent stripes alternate shards
            shards = [s for s, _, _ in segs]
            assert shards[0] != shards[1] and shards[1] != shards[2]

    def test_single_shard_coalesces_to_one_segment(self, tmp_path):
        with ShardedDisk(tmp_path, 1, stripe_bytes=1024) as disk:
            f = disk.open("x")
            assert len(f.segments(100, 10_000)) == 1

    def test_interior_segments_are_whole_stripes(self, tmp_path):
        with ShardedDisk(tmp_path, 4, stripe_bytes=512) as disk:
            f = disk.open("x")
            segs = f.segments(0, 512 * 6)
            assert all(n == 512 for _, _, n in segs)

    def test_roundtrip_bytes_any_alignment(self, tmp_path):
        payload = bytes(range(256)) * 40  # 10240 B
        with ShardedDisk(tmp_path, 3, stripe_bytes=1024) as disk:
            f = disk.open("x")
            f.write_at(777, payload)
            assert f.read_at(777, len(payload)) == payload
            assert f.size() == 777 + len(payload)

    def test_make_disk_dispatch(self, tmp_path):
        with make_disk(tmp_path / "one") as d1:
            assert isinstance(d1, SimulatedDisk)
        with make_disk(tmp_path / "four", 4) as d4:
            assert isinstance(d4, ShardedDisk)
            assert d4.nshards == 4

    def test_nshards_validated(self, tmp_path):
        with pytest.raises(StorageError):
            ShardedDisk(tmp_path, 0)


class TestDAFParity:
    """Satellite 3: byte-identical round-trip with identical logical I/O
    counts for n in {1, 2, 4} versus a plain single disk."""

    @pytest.mark.parametrize("nshards", [1, 2, 4])
    def test_matrix_roundtrip_matches_single_disk(self, tmp_path, nshards):
        rng = np.random.default_rng(3)
        m = rng.standard_normal((120, 80))

        with SimulatedDisk(tmp_path / "base") as disk:
            a = DAFMatrix.create(disk, "A", (2, 2), (60, 40))
            a.write_matrix(m, count=True)
            back_base = a.read_matrix(count=True)
            base = disk.stats.snapshot()

        with make_disk(tmp_path / f"s{nshards}", nshards) as disk:
            a = DAFMatrix.create(disk, "A", (2, 2), (60, 40))
            a.write_matrix(m, count=True)
            back = a.read_matrix(count=True)
            sharded = disk.stats.snapshot()
            phys_read = sum(s.read_bytes for s in disk.shard_stats()) \
                if nshards > 1 else sharded.read_bytes

        assert np.array_equal(back, m)
        assert np.array_equal(back, back_base)
        assert base.read_bytes > 0 and base.read_ops > 0  # not vacuous
        # Logical (single-disk-equivalent) accounting is identical.
        for f in ("read_bytes", "write_bytes", "read_ops", "write_ops"):
            assert getattr(sharded, f) == getattr(base, f), f
        # Physical segment traffic partitions the logical bytes.
        assert phys_read == base.read_bytes

    def test_labtree_on_shards(self, tmp_path):
        rng = np.random.default_rng(5)
        m = rng.standard_normal((120, 80))
        with make_disk(tmp_path, 2, stripe_bytes=4096) as disk:
            t = LABTree.create(disk, "T", (2, 2), (60, 40))
            t.write_matrix(m)
            assert np.array_equal(t.read_matrix(), m)

    def test_exists_and_recover_fan_out(self, tmp_path):
        with make_disk(tmp_path, 2, atomic_writes=True) as disk:
            f = disk.open("x")
            f.write_at(0, b"z" * 200_000)
            assert disk.exists("x")
            assert not disk.exists("y")
            assert disk.recover() == 0
            assert disk.pending_undos() == []


class TestShardFaultDomains:
    def test_fault_confined_to_one_shard(self, tmp_path):
        inj = FaultInjector(11, [FaultPolicy(transient=0.4)])
        with ShardedDisk(tmp_path, 2, fault_injectors=[inj, None],
                         retry=RetryPolicy(max_retries=6)) as disk:
            f = disk.open("x")
            data = b"q" * (512 << 10)
            f.write_at(0, data)
            assert f.read_at(0, len(data)) == data
            s0, s1 = disk.shard_stats()
            assert s0.retries > 0       # the faulty shard retried
            assert s1.retries == 0      # its peer never saw a fault
            # Shard retries are mirrored up into the logical stats.
            assert disk.stats.retries == s0.retries

    def test_injector_and_injectors_mutually_exclusive(self, tmp_path):
        inj = FaultInjector(1, [FaultPolicy(transient=0.1)])
        with pytest.raises(StorageError):
            ShardedDisk(tmp_path, 2, fault_injector=inj,
                        fault_injectors=[inj, None])

    def test_injectors_length_must_match(self, tmp_path):
        inj = FaultInjector(1, [FaultPolicy(transient=0.1)])
        with pytest.raises(StorageError):
            ShardedDisk(tmp_path, 4, fault_injectors=[inj, None])


class TestRunProgramOnShards:
    def test_execution_parity_across_shard_counts(self, prog, plan, inputs,
                                                  tmp_path_factory):
        base_report, base_out = run_program(
            prog, P, plan, tmp_path_factory.mktemp("s1"), inputs)
        for n in (2, 4):
            report, out = run_program(
                prog, P, plan, tmp_path_factory.mktemp(f"s{n}"), inputs,
                shards=n, stripe_bytes=8192)
            assert np.array_equal(out["E"], base_out["E"])
            assert report.io.read_bytes == base_report.io.read_bytes
            assert report.io.write_bytes == base_report.io.write_bytes
            assert report.io.read_ops == base_report.io.read_ops

    def test_confined_fault_with_prefetch(self, prog, plan, inputs,
                                          tmp_path):
        inj = FaultInjector(7, [FaultPolicy(transient=0.3)])
        report, out = run_program(
            prog, P, plan, tmp_path, inputs,
            shards=2, faults=[inj, None],
            retry=RetryPolicy(max_retries=6), prefetch_depth=4)
        truth = (inputs["A"] + inputs["B"]) @ inputs["D"]
        assert np.allclose(out["E"], truth)
        assert report.io.retries > 0

    def test_per_shard_faults_require_shards(self, prog, plan, inputs,
                                             tmp_path):
        inj = FaultInjector(7, [FaultPolicy(transient=0.3)])
        with pytest.raises(ExecutionError):
            run_program(prog, P, plan, tmp_path, inputs,
                        faults=[inj, None])

    def test_checkpoint_resume_over_shards(self, prog, plan, inputs,
                                           tmp_path):
        # Same checkpoint/resume contract as a single disk: a clean rerun
        # with resume=True replays the journal instead of recomputing.
        report1, out1 = run_program(prog, P, plan, tmp_path, inputs,
                                    shards=2, checkpoint=True)
        report2, out2 = run_program(prog, P, plan, tmp_path, inputs,
                                    shards=2, checkpoint=True, resume=True)
        assert np.array_equal(out1["E"], out2["E"])
        assert report2.resumed_from is not None


class TestPaceChannels:
    def test_single_channel_serializes_paced_io(self, tmp_path):
        # Behavioral contract only (timing asserted in the benchmark):
        # a channel-limited disk still produces correct bytes.
        with SimulatedDisk(tmp_path, pace=0.0, pace_channels=1) as disk:
            f = disk.open("x")
            f.write_at(0, b"ab" * 1000)
            assert f.read_at(0, 2000) == b"ab" * 1000

    def test_sharded_pace_channels_per_shard(self, tmp_path):
        with ShardedDisk(tmp_path, 2, pace=0.0, pace_channels=1) as disk:
            for sh in disk.shards:
                assert sh._pace_sem is not None
            f = disk.open("x")
            f.write_at(0, b"y" * 300_000)
            assert f.read_at(0, 300_000) == b"y" * 300_000
