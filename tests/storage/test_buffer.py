"""Unit tests for the buffer pool: cap enforcement, pinning, LRU eviction."""

import numpy as np
import pytest

from repro.exceptions import BufferPoolError
from repro.storage import BufferPool


def blk(value=0.0, n=4):
    return np.full((n,), value)  # 8*n bytes


def loader(value=0.0, n=4):
    return lambda: blk(value, n)


class TestFetchAndPut:
    def test_miss_then_hit(self):
        pool = BufferPool()
        pool.fetch(("A", (0, 0)), loader(1.0))
        b = pool.fetch(("A", (0, 0)), loader(2.0))
        assert b.data[0] == 1.0  # loader not called again
        assert pool.hits == 1 and pool.misses == 1

    def test_put_replaces(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk(1.0))
        pool.put(("A", (0, 0)), blk(2.0))
        assert pool.fetch(("A", (0, 0)), loader()).data[0] == 2.0
        assert pool.used_bytes == 32

    def test_peak_tracking(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk())
        pool.put(("B", (0, 0)), blk())
        pool.release(("A", (0, 0)))
        assert pool.used_bytes == 32
        assert pool.peak_bytes == 64


class TestCapAndEviction:
    def test_lru_eviction(self):
        pool = BufferPool(cap_bytes=64)  # two 32-byte blocks
        pool.put(("A", (0, 0)), blk())
        pool.put(("B", (0, 0)), blk())
        pool.fetch(("A", (0, 0)), loader())  # A is now most recent
        pool.put(("C", (0, 0)), blk())       # evicts B
        assert pool.contains(("A", (0, 0)))
        assert not pool.contains(("B", (0, 0)))
        assert pool.evictions == 1

    def test_block_larger_than_cap(self):
        pool = BufferPool(cap_bytes=16)
        with pytest.raises(BufferPoolError):
            pool.put(("A", (0, 0)), blk())

    def test_all_pinned_overflow_raises(self):
        pool = BufferPool(cap_bytes=64)
        pool.put(("A", (0, 0)), blk())
        pool.put(("B", (0, 0)), blk())
        pool.pin(("A", (0, 0)))
        pool.pin(("B", (0, 0)))
        with pytest.raises(BufferPoolError):
            pool.put(("C", (0, 0)), blk())

    def test_pinned_not_evicted(self):
        pool = BufferPool(cap_bytes=64)
        pool.put(("A", (0, 0)), blk())
        pool.pin(("A", (0, 0)))
        pool.put(("B", (0, 0)), blk())
        pool.put(("C", (0, 0)), blk())  # must evict B, not pinned A
        assert pool.contains(("A", (0, 0)))
        assert not pool.contains(("B", (0, 0)))

    def test_dirty_eviction_refused(self):
        pool = BufferPool(cap_bytes=64)
        pool.put(("A", (0, 0)), blk(), dirty=True)
        pool.put(("B", (0, 0)), blk())
        with pytest.raises(BufferPoolError):
            pool.put(("C", (0, 0)), blk())


class TestPinning:
    def test_pin_unpin_cycle(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk())
        pool.pin(("A", (0, 0)))
        pool.pin(("A", (0, 0)))
        pool.unpin(("A", (0, 0)))
        with pytest.raises(BufferPoolError):
            pool.release(("A", (0, 0)))  # still pinned once
        pool.unpin(("A", (0, 0)))
        pool.release(("A", (0, 0)))
        assert len(pool) == 0

    def test_pin_nonresident_raises(self):
        with pytest.raises(BufferPoolError):
            BufferPool().pin(("A", (0, 0)))

    def test_unpin_without_pin_raises(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk())
        with pytest.raises(BufferPoolError):
            pool.unpin(("A", (0, 0)))

    def test_pinned_bytes(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk())
        pool.put(("B", (0, 0)), blk())
        pool.pin(("B", (0, 0)))
        assert pool.pinned_bytes() == 32

    def test_release_missing_is_noop(self):
        BufferPool().release(("A", (0, 0)))

    def test_release_dirty_raises(self):
        """Regression: release used to silently delete dirty blocks,
        discarding unwritten data that _make_room refuses to drop."""
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk(), dirty=True)
        with pytest.raises(BufferPoolError, match="dirty"):
            pool.release(("A", (0, 0)))
        assert pool.contains(("A", (0, 0)))  # refused, still resident

    def test_release_dirty_force_escape_hatch(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk(), dirty=True)
        pool.release(("A", (0, 0)), force=True)
        assert len(pool) == 0 and pool.used_bytes == 0

    def test_release_clean_after_writeback(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk(), dirty=True)
        pool.mark_clean(("A", (0, 0)))
        pool.release(("A", (0, 0)))  # write-back done: release is legal
        assert len(pool) == 0

    def test_bad_cap_rejected(self):
        with pytest.raises(BufferPoolError):
            BufferPool(cap_bytes=0)


class TestReleaseIfUnpinned:
    """The engine's end-of-instance sweep (replaces reaching into
    ``pool._blocks`` directly)."""

    def test_drops_unpinned(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk())
        assert pool.release_if_unpinned(("A", (0, 0))) is True
        assert len(pool) == 0

    def test_keeps_pinned(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk())
        pool.pin(("A", (0, 0)))
        assert pool.release_if_unpinned(("A", (0, 0))) is False
        assert pool.contains(("A", (0, 0)))

    def test_absent_is_false_not_error(self):
        assert BufferPool().release_if_unpinned(("A", (0, 0))) is False

    def test_dirty_still_raises(self):
        pool = BufferPool()
        pool.put(("A", (0, 0)), blk(), dirty=True)
        with pytest.raises(BufferPoolError, match="dirty"):
            pool.release_if_unpinned(("A", (0, 0)))
        pool.release_if_unpinned(("A", (0, 0)), force=True)
        assert len(pool) == 0

    def test_pin_count(self):
        pool = BufferPool()
        assert pool.pin_count(("A", (0, 0))) == 0
        pool.put(("A", (0, 0)), blk())
        pool.pin(("A", (0, 0)))
        pool.pin(("A", (0, 0)))
        assert pool.pin_count(("A", (0, 0))) == 2
        pool.unpin(("A", (0, 0)))
        assert pool.pin_count(("A", (0, 0))) == 1


class TestMissAccounting:
    def test_miss_counted_only_after_loader_succeeds(self):
        """A loader that raises completed no load: counting it as a miss
        would skew the hit ratio of retried fetches (and disagree with
        SharedBufferPool, which already counted this way)."""
        pool = BufferPool()

        def boom():
            raise RuntimeError("load failed")

        with pytest.raises(RuntimeError, match="load failed"):
            pool.fetch(("A", 0), boom)
        assert pool.misses == 0
        assert pool.hits == 0
        # The retry is the one real miss.
        pool.fetch(("A", 0), loader(1.0))
        assert pool.misses == 1
        pool.fetch(("A", 0), loader(2.0))
        assert pool.hits == 1
        assert pool.misses == 1


class TestDirtyReplacementGuard:
    def test_clean_over_dirty_raises(self):
        pool = BufferPool()
        pool.put(("A", 0), blk(1.0), dirty=True)
        with pytest.raises(BufferPoolError, match="dirty"):
            pool.put(("A", 0), blk(2.0))
        # The dirty original is still resident and untouched.
        assert pool.fetch(("A", 0), loader(9.0)).data[0] == 1.0

    def test_force_drops_dirty_bytes_deliberately(self):
        pool = BufferPool()
        pool.put(("A", 0), blk(1.0), dirty=True)
        b = pool.put(("A", 0), blk(2.0), force=True)
        assert not b.dirty
        pool.release(("A", 0))  # clean now, so release is legal

    def test_dirty_over_dirty_is_fine(self):
        pool = BufferPool()
        pool.put(("A", 0), blk(1.0), dirty=True)
        b = pool.put(("A", 0), blk(2.0), dirty=True)
        assert b.dirty and b.data[0] == 2.0

    def test_pins_survive_replacement(self):
        pool = BufferPool()
        pool.put(("A", 0), blk(1.0), pin=2)
        b = pool.put(("A", 0), blk(2.0))
        assert pool.pin_count(("A", 0)) == 2
        assert b.data[0] == 2.0


class TestStaging:
    def test_stage_pins_and_consume_hands_over(self):
        pool = BufferPool()
        pool.stage(("A", 0), blk(5.0))
        assert pool.pin_count(("A", 0)) == 1
        b = pool.consume_staged(("A", 0), pin=1)
        # Net pins unchanged: the stage pin became the consumer's pin.
        assert pool.pin_count(("A", 0)) == 1
        assert b.data[0] == 5.0
        with pytest.raises(BufferPoolError, match="non-staged"):
            pool.consume_staged(("A", 0))

    def test_double_stage_accumulates_marks(self):
        pool = BufferPool()
        pool.stage(("A", 0), blk(5.0))
        pool.stage(("A", 0), blk(5.0))
        assert pool.pin_count(("A", 0)) == 2
        pool.consume_staged(("A", 0))
        pool.consume_staged(("A", 0))
        assert pool.pin_count(("A", 0)) == 2
        with pytest.raises(BufferPoolError):
            pool.consume_staged(("A", 0))

    def test_staged_block_immune_to_lru_pressure(self):
        nbytes = blk().nbytes
        pool = BufferPool(cap_bytes=3 * nbytes)
        pool.stage(("S", 0), blk(1.0))
        pool.put(("B", 0), blk(2.0))
        pool.put(("C", 0), blk(3.0))
        pool.put(("D", 0), blk(4.0))  # evicts B (LRU) — never the staged S
        assert pool.contains(("S", 0))
        assert not pool.contains(("B", 0))

    def test_discard_releases_when_last_pin(self):
        pool = BufferPool()
        pool.stage(("A", 0), blk(1.0))
        assert pool.discard_staged(("A", 0)) is True
        assert not pool.contains(("A", 0))
        assert pool.discard_staged(("A", 0)) is False

    def test_discard_keeps_block_with_other_pins(self):
        pool = BufferPool()
        pool.stage(("A", 0), blk(1.0))
        pool.pin(("A", 0))
        assert pool.discard_staged(("A", 0)) is True
        assert pool.contains(("A", 0))
        assert pool.pin_count(("A", 0)) == 1

    def test_consume_missing_block_raises(self):
        pool = BufferPool()
        with pytest.raises(BufferPoolError, match="non-staged"):
            pool.consume_staged(("A", 0))
