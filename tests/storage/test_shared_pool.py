"""Concurrency tests for :class:`repro.storage.SharedBufferPool`.

The invariants a shared pool must hold under contention:

* the byte cap is never exceeded (``peak_bytes <= cap``);
* a pinned block is never evicted — a fetch under an owner's live pin must
  find it resident (same object) without invoking the loader;
* a block is never loaded twice concurrently (loader de-duplication): two
  queries faulting the same key issue exactly one disk read;
* per-owner pin accounting balances, and :meth:`release_owner` sweeps what
  a crashed query leaked without touching other owners' pins.
"""

import threading

import numpy as np
import pytest

from repro.exceptions import BufferPoolError
from repro.storage import SharedBufferPool

BLOCK = 64  # floats per block
BLOCK_BYTES = BLOCK * 8


def _data(key: int) -> np.ndarray:
    return np.full(BLOCK, float(key))


class _LoadTracker:
    """Counts loader invocations and flags concurrent loads of one key."""

    def __init__(self):
        self.lock = threading.Lock()
        self.counts: dict[int, int] = {}
        self.in_flight: set[int] = set()
        self.overlapped = False

    def loader(self, key: int, delay: float = 0.0):
        def load():
            with self.lock:
                if key in self.in_flight:
                    self.overlapped = True
                self.in_flight.add(key)
                self.counts[key] = self.counts.get(key, 0) + 1
            if delay:
                threading.Event().wait(delay)
            with self.lock:
                self.in_flight.discard(key)
            return _data(key)
        return load

    @property
    def total(self) -> int:
        with self.lock:
            return sum(self.counts.values())


def _fail_loader(key):
    def load():
        raise AssertionError(f"unexpected load of {key}")
    return load


class TestLoaderDedup:
    def test_concurrent_fetch_loads_once(self):
        pool = SharedBufferPool(1 << 20)
        tracker = _LoadTracker()
        started = threading.Barrier(4)
        blocks = []
        lock = threading.Lock()

        def fetch(_):
            started.wait()
            blk = pool.fetch(("x", (0, 0)), tracker.loader(0, delay=0.05))
            with lock:
                blocks.append(blk)

        threads = [threading.Thread(target=fetch, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracker.total == 1
        assert not tracker.overlapped
        assert len({id(b) for b in blocks}) == 1
        # One miss (the loading thread); every waiter counts as a hit.
        assert pool.misses == 1
        assert pool.hits == 3

    def test_failed_load_wakes_waiters_and_retries(self):
        pool = SharedBufferPool(1 << 20)
        release = threading.Event()
        calls = []

        def failing():
            calls.append("fail")
            release.wait(5)
            raise OSError("injected")

        def succeeding():
            calls.append("ok")
            return _data(1)

        results = []

        def first():
            try:
                pool.fetch(("y", (0,)), failing)
            except OSError:
                results.append("raised")

        def second():
            results.append(pool.fetch(("y", (0,)), succeeding).data[0])

        t1 = threading.Thread(target=first)
        t1.start()
        while "fail" not in calls:  # first thread owns the in-flight slot
            pass
        t2 = threading.Thread(target=second)
        t2.start()
        release.set()
        t1.join()
        t2.join()
        assert "raised" in results
        assert 1.0 in results  # the waiter re-drove the load itself

    def test_distinct_keys_load_in_parallel(self):
        pool = SharedBufferPool(1 << 20)
        gate = threading.Barrier(2, timeout=5)

        def loader(key):
            def load():
                gate.wait()  # both loaders must be in flight at once
                return _data(key)
            return load

        def fetch(key):
            pool.fetch(("z", (key,)), loader(key))

        threads = [threading.Thread(target=fetch, args=(k,)) for k in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()  # would deadlock if loads were serialized


class TestOwnerPins:
    def test_release_owner_sweeps_only_that_owner(self):
        pool = SharedBufferPool(1 << 20)
        key = ("a", (0, 0))
        pool.fetch(key, lambda: _data(0), pin=2, owner="job1")
        pool.pin(key, owner="job2")
        assert pool.pin_count(key) == 3
        assert pool.owner_pin_count("job1") == 2
        assert pool.release_owner("job1") == 2
        assert pool.pin_count(key) == 1
        assert pool.owner_pin_count("job1") == 0
        assert pool.release_owner("job2") == 1
        assert pool.pin_count(key) == 0

    def test_balanced_unpin_clears_owner_books(self):
        pool = SharedBufferPool(1 << 20)
        key = ("a", (1, 1))
        pool.fetch(key, lambda: _data(1), pin=1, owner="j")
        pool.unpin(key, owner="j")
        assert pool.owner_pin_count("j") == 0
        assert pool.release_owner("j") == 0

    def test_drop_matching_spares_pinned_and_foreign(self):
        pool = SharedBufferPool(1 << 20)
        pool.fetch(("j1__C", (0,)), lambda: _data(0))
        pool.fetch(("j1__E", (0,)), lambda: _data(1), pin=1, owner="j1")
        pool.fetch(("ds_abc", (0,)), lambda: _data(2))
        dropped = pool.drop_matching(lambda k: k[0].startswith("j1__"))
        assert dropped == 1  # the unpinned private block only
        assert pool.contains(("j1__E", (0,)))
        assert pool.contains(("ds_abc", (0,)))


class TestStress:
    THREADS = 8
    ITERS = 300
    KEYS = 24
    # Each thread holds at most one pin; 8 pinned blocks must always fit.
    CAP = 12 * BLOCK_BYTES

    def test_hammer_invariants(self):
        pool = SharedBufferPool(self.CAP)
        tracker = _LoadTracker()
        errors = []

        def worker(tid):
            rng = np.random.default_rng(tid)
            owner = f"t{tid}"
            try:
                for _ in range(self.ITERS):
                    key_id = int(rng.integers(self.KEYS))
                    key = ("s", (key_id,))
                    blk = pool.fetch(key, tracker.loader(key_id),
                                     pin=1, owner=owner)
                    # Under our live pin the block cannot be evicted: a
                    # re-fetch must find it resident (same object, loader
                    # never invoked) ...
                    again = pool.fetch(key, _fail_loader(key_id))
                    assert again is blk
                    # ... and its payload must be intact.
                    assert blk.data[0] == float(key_id)
                    pool.unpin(key, owner=owner)
            except BaseException as err:
                errors.append(err)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

        assert pool.peak_bytes <= self.CAP
        assert not tracker.overlapped, "two concurrent loads of one key"
        # Every disk read the pool issued is a miss, and vice versa —
        # waiters that joined an in-flight load count as hits.
        assert pool.misses == tracker.total
        fetches = 2 * self.THREADS * self.ITERS
        assert pool.hits + pool.misses == fetches
        # Under a cap of 12 blocks and 24 hot keys there was real pressure.
        assert pool.evictions > 0
        for tid in range(self.THREADS):
            assert pool.owner_pin_count(f"t{tid}") == 0

    def test_cap_violation_with_all_pinned_raises(self):
        pool = SharedBufferPool(2 * BLOCK_BYTES)
        pool.fetch(("k", (0,)), lambda: _data(0), pin=1)
        pool.fetch(("k", (1,)), lambda: _data(1), pin=1)
        with pytest.raises(BufferPoolError):
            pool.fetch(("k", (2,)), lambda: _data(2), pin=1)


class TestStagingWithOwners:
    def test_stage_consume_moves_pin_to_owner(self):
        pool = SharedBufferPool()
        pool.stage(("A", 0), _data(1), owner="job1")
        assert pool.owner_pin_count("job1") == 1
        blk = pool.consume_staged(("A", 0), pin=1, owner="job1")
        assert blk.data[0] == 1.0
        assert pool.owner_pin_count("job1") == 1
        assert pool.pin_count(("A", 0)) == 1
        pool.unpin(("A", 0), owner="job1")
        assert pool.owner_pin_count("job1") == 0

    def test_release_owner_sweeps_consumed_staged_pins(self):
        """A crashed job's consumed-staged pins are owner pins like any
        other: release_owner reclaims them without touching other jobs."""
        pool = SharedBufferPool()
        pool.stage(("A", 0), _data(1), owner="dead")
        pool.consume_staged(("A", 0), owner="dead")
        pool.pin(("A", 0), owner="alive")
        assert pool.release_owner("dead") == 1
        assert pool.pin_count(("A", 0)) == 1
        assert pool.owner_pin_count("alive") == 1

    def test_discard_staged_drops_owner_pin(self):
        pool = SharedBufferPool()
        pool.stage(("A", 0), _data(1), owner="job1")
        assert pool.discard_staged(("A", 0), owner="job1") is True
        assert pool.owner_pin_count("job1") == 0
        assert not pool.contains(("A", 0))

    def test_concurrent_stage_consume_balances(self):
        """8 jobs stage/consume/unpin disjoint keys concurrently; all pin
        books balance and nothing leaks."""
        pool = SharedBufferPool()
        errors = []

        def job(i):
            try:
                owner = f"job{i}"
                for k in range(50):
                    key = ("A", i, k)
                    pool.stage(key, _data(i), owner=owner)
                    pool.consume_staged(key, owner=owner)
                    pool.unpin(key, owner=owner)
            except BaseException as err:
                errors.append(err)

        threads = [threading.Thread(target=job, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(8):
            assert pool.owner_pin_count(f"job{i}") == 0
        assert pool.pinned_bytes() == 0
