"""Fault injection, checksums, atomic writes, retry/backoff, recovery.

The seed sweep is CI-configurable: ``REPRO_FAULT_SEEDS="0 1 2"`` (fast CI)
or a 25-seed nightly sweep — every seed must round-trip bit-exact.
"""

import os

import numpy as np
import pytest

from repro.exceptions import CorruptBlockError, StorageError
from repro.storage import (DAFMatrix, FaultInjector, FaultPolicy, LABTree,
                           RetryPolicy, SimulatedDisk, block_checksum)


def _seeds():
    env = os.environ.get("REPRO_FAULT_SEEDS")
    if not env:
        return [0, 1, 2]
    return [int(s) for s in env.replace(",", " ").split()]


def _disk(path, injector=None, max_retries=3, **kw):
    return SimulatedDisk(path, fault_injector=injector,
                         retry=RetryPolicy(max_retries, backoff_base=0), **kw)


def _block(seed=0, shape=(4, 4)):
    return np.random.default_rng(seed).standard_normal(shape)


class TestFaultInjector:
    def test_deterministic_given_seed_and_op_sequence(self):
        def drive(inj):
            out = []
            for i in range(50):
                out.append(inj.on_read("A.daf", i * 64, 64))
                out.append(inj.on_write("A.daf", i * 64, 64))
            return out

        mk = lambda: FaultInjector(7, [FaultPolicy(transient=0.2, corrupt=0.1,
                                                   torn=0.1)])
        a, b = mk(), mk()
        assert drive(a) == drive(b)
        assert [repr(f) for f in a.trace] == [repr(f) for f in b.trace]
        assert a.counts()  # a 40% aggregate rate over 100 ops injects some

    def test_policy_scoping_by_name_and_op(self):
        inj = FaultInjector(0, [FaultPolicy("A.daf", op="read", transient=1.0)])
        assert inj.on_read("B.daf", 0, 8) is None
        assert inj.on_write("A.daf", 0, 8) is None
        assert inj.on_read("A.daf", 0, 8) == ("transient", None)

    def test_after_and_max_faults(self):
        inj = FaultInjector(0, [FaultPolicy(op="read", transient=1.0,
                                            after=2, max_faults=1)])
        assert inj.on_read("x", 0, 8) is None   # warm-up 1
        assert inj.on_read("x", 0, 8) is None   # warm-up 2
        assert inj.on_read("x", 0, 8) == ("transient", None)
        assert inj.on_read("x", 0, 8) is None   # budget exhausted
        assert len(inj.trace) == 1

    def test_corrupt_flips_exactly_one_byte(self):
        data = bytes(range(16))
        out = FaultInjector.corrupt(data, 5)
        assert out != data and len(out) == len(data)
        assert sum(a != b for a, b in zip(data, out)) == 1

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(transient=0.8, corrupt=0.5)
        with pytest.raises(ValueError):
            FaultPolicy(op="append")


class TestRetryPolicy:
    def test_exponential_backoff_capped(self):
        p = RetryPolicy(5, backoff_base=0.01, backoff_cap=0.04)
        assert [p.delay(n) for n in (1, 2, 3, 4)] == [0.01, 0.02, 0.04, 0.04]

    def test_zero_base_never_sleeps(self):
        assert RetryPolicy(3, backoff_base=0).delay(4) == 0.0

    def test_sleep_interruptible_by_event(self):
        """A set interrupt event turns a long backoff into an immediate
        return — cancellation must not wait out the retry schedule."""
        import threading
        import time

        p = RetryPolicy(3, backoff_base=5.0, backoff_cap=5.0)
        ev = threading.Event()
        ev.set()
        t0 = time.monotonic()
        p.sleep(1, interrupt=ev)
        assert time.monotonic() - t0 < 1.0

    def test_sleep_uses_thread_local_interrupt(self):
        """Deep disk retry loops pick the interrupt up from the ambient
        scope — no signature changes down the storage stack."""
        import threading
        import time

        from repro.cancel import interrupt_scope

        p = RetryPolicy(3, backoff_base=5.0, backoff_cap=5.0)
        ev = threading.Event()
        ev.set()
        t0 = time.monotonic()
        with interrupt_scope(ev):
            p.sleep(1)
        assert time.monotonic() - t0 < 1.0


class TestTransientFaults:
    def test_read_absorbed_and_counted(self, tmp_path):
        inj = FaultInjector(0, [FaultPolicy(op="read", transient=1.0,
                                            max_faults=2)])
        with _disk(tmp_path, inj) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            data = _block(1)
            m.write_block((0, 0), data)
            assert np.array_equal(m.read_block((0, 0)), data)
            assert disk.stats.retries == 2
            assert [f.kind for f in inj.trace] == ["transient", "transient"]

    def test_write_absorbed_and_counted(self, tmp_path):
        inj = FaultInjector(0, [FaultPolicy(op="write", transient=1.0,
                                            max_faults=1)])
        with _disk(tmp_path, inj) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            data = _block(2)
            m.write_block((1, 1), data)
            assert disk.stats.retries == 1
            assert np.array_equal(m.read_block((1, 1)), data)

    def test_exhaustion_fails_loudly(self, tmp_path):
        inj = FaultInjector(0, [FaultPolicy(op="read", transient=1.0)])
        with _disk(tmp_path, inj, max_retries=2) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            m.write_block((0, 0), _block())
            with pytest.raises(StorageError, match="failed after 3 attempts"):
                m.read_block((0, 0))
            assert disk.stats.retries == 2

    def test_uncounted_metadata_ops_never_faulted(self, tmp_path):
        inj = FaultInjector(0, [FaultPolicy(transient=1.0)])
        with _disk(tmp_path, inj, max_retries=0) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            data = _block(3)
            m.write_block((0, 0), data, count=False)
            assert np.array_equal(m.read_block((0, 0), count=False), data)
            assert not inj.trace


class TestChecksums:
    def test_inflight_corruption_healed_by_reread(self, tmp_path):
        inj = FaultInjector(0, [FaultPolicy(op="read", corrupt=1.0,
                                            max_faults=1)])
        with _disk(tmp_path, inj) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            data = _block(4)
            m.write_block((0, 0), data)
            assert np.array_equal(m.read_block((0, 0)), data)
            assert disk.stats.checksum_failures == 1

    def test_persistent_corruption_raises(self, tmp_path):
        with _disk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            m.write_block((0, 0), _block(5))
            m.file.flush()
            with open(tmp_path / "M.daf", "r+b") as fh:
                fh.seek(64)  # first block's payload
                fh.write(b"\xff" * 16)
            with pytest.raises(CorruptBlockError, match="failed checksum"):
                m.read_block((0, 0))
            assert disk.stats.checksum_failures == 4  # 1 + 3 re-reads

    def test_sidecar_survives_reopen(self, tmp_path):
        data = _block(6)
        with _disk(tmp_path) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            m.write_block((1, 0), data)
            off_unwritten = 64 + m.layout.offset_of((0, 1))
            off_written = 64 + m.layout.offset_of((1, 0))
        with _disk(tmp_path) as disk:
            m = DAFMatrix.open(disk, "M")
            assert np.array_equal(m.read_block((1, 0)), data)
        # corrupt the file between sessions (bit rot while "powered off")
        with open(tmp_path / "M.daf", "r+b") as fh:
            fh.seek(off_unwritten)
            fh.write(b"\x07" * 8)
            fh.seek(off_written)
            fh.write(b"garbage!")
        with _disk(tmp_path) as disk:
            m = DAFMatrix.open(disk, "M")
            # never-written region: no checksum recorded, reads as-is
            m.read_block((0, 1))
            with pytest.raises(CorruptBlockError):
                m.read_block((1, 0))

    def test_labtree_payload_corruption_detected(self, tmp_path):
        with _disk(tmp_path) as disk:
            t = LABTree.create(disk, "T", (2, 2), (4, 4))
            t.write_block((0, 0), _block(7))
            t.data_file.flush()
            with open(tmp_path / "T.labd", "r+b") as fh:
                fh.write(b"\x00" * 32)
            with pytest.raises(CorruptBlockError):
                t.read_block((0, 0))

    def test_block_checksum_stable(self):
        assert block_checksum(b"abc") == block_checksum(b"abc")
        assert block_checksum(b"abc") != block_checksum(b"abd")


class TestTornWritesAndRecovery:
    def test_torn_write_absorbed_by_retry(self, tmp_path):
        inj = FaultInjector(0, [FaultPolicy(op="write", torn=1.0,
                                            max_faults=1)])
        with _disk(tmp_path, inj) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            data = _block(8)
            m.write_block((0, 0), data)
            assert disk.stats.retries == 1
            assert inj.trace[0].kind == "torn"
            assert np.array_equal(m.read_block((0, 0)), data)

    def test_exhausted_torn_write_recovers_previous_image(self, tmp_path):
        old = _block(9)
        with _disk(tmp_path, atomic_writes=True, max_retries=1) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            m.write_block((0, 0), old)
            # the disk turns hostile: every write now tears, retries exhaust
            disk.fault_injector = FaultInjector(
                0, [FaultPolicy(op="write", torn=1.0)])
            with pytest.raises(StorageError, match="write at .* failed"):
                m.write_block((0, 0), _block(10))
            assert disk.pending_undos()
            # the in-place image is torn: new prefix over old suffix
            disk.fault_injector = None
            with pytest.raises(CorruptBlockError):
                m.read_block((0, 0))
        # a fresh (restarted) disk rolls back to the pre-write image
        with _disk(tmp_path) as disk:
            assert disk.recover() == 1
            assert not disk.pending_undos()
            m = DAFMatrix.open(disk, "M")
            assert np.array_equal(m.read_block((0, 0)), old)

    def test_recover_noop_on_clean_disk(self, tmp_path):
        with _disk(tmp_path, atomic_writes=True) as disk:
            m = DAFMatrix.create(disk, "M", (2, 2), (4, 4))
            m.write_block((0, 0), _block(11))
            assert disk.pending_undos() == []
            assert disk.recover() == 0


class TestSeedSweep:
    """Every CI seed must round-trip bit-exact under mixed faults."""

    @pytest.mark.parametrize("seed", _seeds())
    def test_roundtrip_under_mixed_faults(self, tmp_path, seed):
        inj = FaultInjector(seed, [FaultPolicy(transient=0.15, corrupt=0.05,
                                               torn=0.05)])
        with _disk(tmp_path, inj, max_retries=6, atomic_writes=True) as disk:
            m = DAFMatrix.create(disk, "M", (3, 3), (5, 5))
            blocks = {c: _block(hash(c) % 100, (5, 5))
                      for c in m.layout.iter_blocks()}
            for coords, data in blocks.items():
                m.write_block(coords, data)
            for coords, data in blocks.items():
                assert np.array_equal(m.read_block(coords), data), coords
            transients = sum(1 for f in inj.trace
                             if f.kind in ("transient", "torn"))
            assert disk.stats.retries == transients
