"""Thread-safety regression tests for the storage counters and disk layer.

The multi-query service (:mod:`repro.service`) hammers one
:class:`SimulatedDisk` — and its :class:`IOStats` counters — from many
executor threads.  These tests drive the same contention patterns from 8
threads and assert the totals are *exact*: a lost increment anywhere in the
counted-op hot path shows up as an off-by-n here.
"""

import threading

import numpy as np
import pytest

from repro.storage import DAFMatrix, IOStats, SimulatedDisk

THREADS = 8
ITERS = 400


def _spawn(fn, n=THREADS):
    errors = []

    def wrapped(i):
        try:
            fn(i)
        except BaseException as err:  # surfaced after join
            errors.append(err)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestIOStatsConcurrent:
    def test_add_is_atomic_across_threads(self):
        stats = IOStats()

        def hammer(_):
            for _ in range(ITERS):
                stats.add(read_bytes=3, read_ops=1)
                stats.add(write_bytes=7, write_ops=1, retries=1)

        _spawn(hammer)
        assert stats.read_bytes == THREADS * ITERS * 3
        assert stats.read_ops == THREADS * ITERS
        assert stats.write_bytes == THREADS * ITERS * 7
        assert stats.write_ops == THREADS * ITERS
        assert stats.retries == THREADS * ITERS

    def test_snapshot_is_consistent_under_writers(self):
        stats = IOStats()
        stop = threading.Event()

        def writer(_):
            while not stop.is_set():
                # Keep the pair invariant: bytes == 3 * ops, always.
                stats.add(read_bytes=3, read_ops=1)

        snaps = []

        def reader(_):
            for _ in range(200):
                snaps.append(stats.snapshot())

        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for t in writers:
            t.start()
        try:
            _spawn(reader, n=2)
        finally:
            stop.set()
            for t in writers:
                t.join()
        for s in snaps:
            assert s.read_bytes == 3 * s.read_ops


class TestDiskConcurrent:
    def test_open_returns_one_shared_handle(self, tmp_path):
        disk = SimulatedDisk(tmp_path)
        files = []
        lock = threading.Lock()

        def opener(_):
            f = disk.open("shared.bin")
            with lock:
                files.append(f)

        _spawn(opener)
        assert len({id(f) for f in files}) == 1
        disk.close()

    def test_eight_thread_hammer_exact_totals(self, tmp_path):
        """8 threads read/write disjoint regions; counters land exactly."""
        disk = SimulatedDisk(tmp_path)
        f = disk.open("hammer.bin")
        region = 64
        f.truncate(THREADS * ITERS * region)

        def hammer(i):
            base = i * ITERS * region
            payload = bytes([i + 1]) * region
            for k in range(ITERS):
                f.write_at(base + k * region, payload)
            for k in range(ITERS):
                assert f.read_at(base + k * region, region) == payload

        _spawn(hammer)
        total_ops = THREADS * ITERS
        assert disk.stats.read_ops == total_ops
        assert disk.stats.write_ops == total_ops
        assert disk.stats.read_bytes == total_ops * region
        assert disk.stats.write_bytes == total_ops * region
        disk.close()

    def test_concurrent_daf_block_reads_are_exact(self, tmp_path):
        """One DAF store, 8 readers: counted bytes == blocks * block size."""
        disk = SimulatedDisk(tmp_path)
        mat = DAFMatrix.create(disk, "m", (4, 4), (8, 8))
        rng = np.random.default_rng(0)
        full = rng.standard_normal((32, 32))
        mat.write_matrix(full, count=False)
        reads_per_thread = 50

        def reader(i):
            rng_t = np.random.default_rng(i)
            for _ in range(reads_per_thread):
                bi, bj = int(rng_t.integers(4)), int(rng_t.integers(4))
                blk = mat.read_block((bi, bj))
                assert np.array_equal(
                    blk, full[bi * 8:(bi + 1) * 8, bj * 8:(bj + 1) * 8])

        _spawn(reader)
        total = THREADS * reads_per_thread
        assert disk.stats.read_ops == total
        assert disk.stats.read_bytes == total * mat.layout.block_bytes
        assert disk.stats.checksum_failures == 0
        disk.close()

    @pytest.mark.slow
    def test_hammer_with_fault_injection(self, tmp_path):
        """Retries from 8 threads are absorbed and counted, data intact."""
        from repro.storage import FaultInjector, RetryPolicy

        disk = SimulatedDisk(tmp_path,
                             fault_injector=FaultInjector.transient(seed=7),
                             retry=RetryPolicy(max_retries=8,
                                               backoff_base=0.0))
        f = disk.open("faulty.bin")
        region = 32
        iters = 100
        f.truncate(THREADS * iters * region)

        def hammer(i):
            base = i * iters * region
            payload = bytes([i + 1]) * region
            for k in range(iters):
                f.write_at(base + k * region, payload)
                assert f.read_at(base + k * region, region) == payload

        _spawn(hammer)
        total = THREADS * iters
        assert disk.stats.read_ops == total
        assert disk.stats.write_ops == total
        assert disk.stats.retries > 0
        disk.close()


class TestSinceResetThreadValue:
    """since()/reset() take the counter lock; thread_value() attributes
    per-thread — regression tests for the torn-delta bugs."""

    def test_since_is_consistent_under_writers(self):
        stats = IOStats()
        stats.add(read_bytes=3, read_ops=1)
        base = stats.snapshot()
        stop = threading.Event()

        def writer(_):
            while not stop.is_set():
                stats.add(read_bytes=3, read_ops=1)

        deltas = []

        def reader(_):
            for _ in range(200):
                deltas.append(stats.since(base))

        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for t in writers:
            t.start()
        try:
            _spawn(reader, n=2)
        finally:
            stop.set()
            for t in writers:
                t.join()
        for d in deltas:
            assert d.read_bytes == 3 * d.read_ops

    def test_reset_under_writers_never_tears(self):
        """reset() zeroes all fields in one critical section: adds are
        all-or-nothing against it, so the bytes==3*ops pair invariant
        survives any interleaving of resets and adds."""
        stats = IOStats()
        stop = threading.Event()

        def writer(_):
            while not stop.is_set():
                stats.add(read_bytes=3, read_ops=1)

        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for t in writers:
            t.start()
        try:
            for _ in range(100):
                stats.reset()
                s = stats.snapshot()
                assert s.read_bytes == 3 * s.read_ops
        finally:
            stop.set()
            for t in writers:
                t.join()
        s = stats.snapshot()
        assert s.read_bytes == 3 * s.read_ops

    def test_thread_value_attributes_per_thread(self):
        stats = IOStats()
        seen = {}
        lock = threading.Lock()

        def hammer(i):
            for _ in range(ITERS):
                stats.add(read_bytes=i + 1, read_ops=1)
            with lock:
                seen[i] = stats.thread_value("read_bytes")

        _spawn(hammer)
        for i in range(THREADS):
            assert seen[i] == (i + 1) * ITERS
        assert stats.read_bytes == sum((i + 1) * ITERS
                                       for i in range(THREADS))
