"""The generated code for Example 1 with n3 >= 2 must have Figure 1(b)'s
"partial pipelining" structure: a merged nest handling j = 0 (s1 and s2
interleaved, C pipelined) followed by a pure-s2 nest for j >= 1 that
re-reads C from disk."""

import pytest

from repro.codegen import IOAction, build_executable_plan, render_c
from repro.optimizer import optimize
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 3, "n3": 2}


@pytest.fixture(scope="module")
def setup():
    prog = example1_program()
    result = optimize(prog, P)
    plan = result.plan_for(["s1WC->s2RC", "s2WE->s2RE", "s2WE->s2WE"])
    return prog, result, plan


def test_plan_exists_for_general_case(setup):
    prog, result, plan = setup
    assert plan is not None


def test_j0_reads_pipelined_rest_from_disk(setup):
    """C's reads at j = 0 are REUSE (pipelined from s1); at j >= 1 they hit
    disk — the paper's 'partial' sharing that black-box operators miss."""
    prog, result, plan = setup
    ep = build_executable_plan(prog, P, plan)
    for inst in ep.instances:
        for pa in inst.reads:
            if pa.access.array.name != "C":
                continue
            j = inst.point[1]
            if j == 0:
                assert pa.action is IOAction.REUSE, inst
            else:
                assert pa.action is IOAction.READ, inst


def test_c_written_exactly_once_per_block(setup):
    """Unlike the n3 = 1 case, C must be materialized (read again at j >= 1),
    so every block is written exactly once."""
    prog, result, plan = setup
    ep = build_executable_plan(prog, P, plan)
    writes = {}
    for inst in ep.instances:
        w = inst.write
        if w and w.access.array.name == "C":
            writes.setdefault(w.block, []).append(w.action)
    assert len(writes) == P["n1"] * P["n2"]
    for actions in writes.values():
        assert actions == [IOAction.WRITE]


def test_interleaving_of_s1_and_s2(setup):
    """In the merged region, each s1 instance is immediately followed by the
    s2 instance consuming its C block (Figure 1(b)'s inner body)."""
    prog, result, plan = setup
    ep = build_executable_plan(prog, P, plan)
    names = [inst.stmt.name for inst in ep.instances]
    for i, inst in enumerate(ep.instances):
        if inst.stmt.name == "s1":
            assert i + 1 < len(names) and names[i + 1] == "s2", (
                "s1 must pipeline directly into s2")
            nxt = ep.instances[i + 1]
            assert nxt.point[0] == inst.point[0]      # same i
            assert nxt.point[2] == inst.point[1]      # same k
            assert nxt.point[1] == 0                  # the j = 0 pass


def test_rendered_code_splits_the_nests(setup):
    """The j >= 1 region appears as its own loop(s) after the merged region,
    with C read from disk."""
    prog, result, plan = setup
    text = render_c(build_executable_plan(prog, P, plan))
    merged = text.index("s1")
    # After the last s1 mention there is still s2 work (the j >= 1 sweep).
    last_s1 = text.rindex("// s1")
    tail = text[last_s1:]
    assert "// s2" in tail
    assert "C: read" in tail  # re-reads from disk in the trailing nest
