"""Tests for code generation: executable plans and pseudo-C rendering."""

import pytest

from repro.codegen import IOAction, build_executable_plan, render_c
from repro.optimizer import optimize
from tests.fixtures import example1_program

P = {"n1": 2, "n2": 2, "n3": 1}


@pytest.fixture(scope="module")
def prog():
    return example1_program()


@pytest.fixture(scope="module")
def result(prog):
    return optimize(prog, P)


class TestDeadWriteElimination:
    def test_c_never_written_when_n3_is_1(self, prog, result):
        """Footnote 8: in the best plan with n3 = 1, the intermediate C is
        fully pipelined and its write is elided."""
        best = result.best()
        ep = build_executable_plan(prog, P, best)
        c_writes = [inst.write for inst in ep.instances
                    if inst.write and inst.write.access.array.name == "C"]
        assert c_writes
        assert all(w.action is IOAction.WRITE_SKIP for w in c_writes)

    def test_output_e_is_written(self, prog, result):
        """E is a program output: its final write per block must hit disk."""
        best = result.best()
        ep = build_executable_plan(prog, P, best)
        final_write_per_block = {}
        for inst in ep.instances:
            w = inst.write
            if w and w.access.array.name == "E":
                final_write_per_block[w.block] = w.action
        assert final_write_per_block
        assert all(a is IOAction.WRITE for a in final_write_per_block.values())

    def test_plan0_writes_c(self, prog, result):
        ep = build_executable_plan(prog, P, result.original_plan)
        c_writes = [inst.write for inst in ep.instances
                    if inst.write and inst.write.access.array.name == "C"]
        assert all(w.action is IOAction.WRITE for w in c_writes)


class TestPipelining:
    def test_best_plan_reuses_c(self, prog, result):
        ep = build_executable_plan(prog, P, result.best())
        c_reads = [pa for inst in ep.instances for pa in inst.reads
                   if pa.access.array.name == "C"]
        assert c_reads
        assert all(pa.action is IOAction.REUSE for pa in c_reads)

    def test_plan0_has_no_reuse(self, prog, result):
        ep = build_executable_plan(prog, P, result.original_plan)
        summary = ep.io_summary()
        assert summary["reuse"] == 0
        assert summary["write_skip"] == 0


class TestRenderC:
    def test_renders_loops_and_annotations(self, prog, result):
        text = render_c(build_executable_plan(prog, P, result.best()))
        assert "for (" in text
        assert "reuse (in memory)" in text
        assert "// s1" in text and "// s2" in text

    def test_lists_realized_opportunities(self, prog, result):
        text = render_c(build_executable_plan(prog, P, result.best()))
        assert "s1WC->s2RC" in text

    def test_original_plan_renders_reads_writes_only(self, prog, result):
        text = render_c(build_executable_plan(prog, P, result.original_plan))
        assert "reuse" not in text
        assert "keep in memory" not in text
